//! Event-driven list scheduling of a task DAG on an emulated cluster.
//!
//! The event loop is a single generalized implementation parameterised by a
//! [`DynamicListStrategy`] lattice point (see [`crate::lattice`]); the four
//! fixed [`Strategy`] policies are thin wrappers over their pinned lattice
//! equivalents and reproduce the pre-lattice schedules bit for bit (pinned
//! by `tests/determinism.rs`).

use crate::cluster::{ClusterConfig, UNBOUNDED_CORES};
use crate::lattice::{DynamicListStrategy, ProcessCriterion, TaskCriterion, TieBreak};
use crate::network::{NetworkModel, TransferSegment, UNBOUNDED_CHANNELS};
use crate::trace::Segment;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tempart_obs::replay::NetStats;
use tempart_obs::{Clock, Recorder};
use tempart_taskgraph::{TaskGraph, TaskId};

/// Inter-process communication model.
///
/// The paper's FLUSIM deliberately ignores communication ("No communication
/// or runtime overheads are considered"); this optional model extends it so
/// the §VII trade-off (MC_TL's larger cut vs its better balance) can be
/// quantified. A dependency edge whose endpoint tasks live on different
/// processes delays the successor's readiness by
/// `latency + n_objects(pred) × cost_per_object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommModel {
    /// Fixed per-message delay, in cost units.
    pub latency: u64,
    /// Per-transferred-object delay (∝ message size), in cost units.
    pub cost_per_object: u64,
}

impl CommModel {
    /// The idealized model: communication is free (the paper's FLUSIM).
    pub const FREE: CommModel = CommModel {
        latency: 0,
        cost_per_object: 0,
    };

    /// Delay contributed by one cross-process edge from a task with
    /// `n_objects` transferred objects.
    pub fn delay(&self, n_objects: u32) -> u64 {
        self.latency + u64::from(n_objects) * self.cost_per_object
    }

    /// True when the model adds no delay.
    pub fn is_free(&self) -> bool {
        self.latency == 0 && self.cost_per_object == 0
    }
}

/// Ready-queue policy per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// First-ready-first-served — the eager policy the paper uses as its
    /// optimal reference in unbounded configurations.
    EagerFifo,
    /// Last-ready-first-served (depth-first tendency).
    EagerLifo,
    /// Highest upward rank first (critical-path-aware, HEFT-like).
    CriticalPathFirst,
    /// Cheapest task first.
    SmallestFirst,
}

/// Outcome of a simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the last task, in cost units.
    pub makespan: u64,
    /// Σ task cost executed per process.
    pub busy: Vec<u64>,
    /// Length of the union of each process's active intervals: the time
    /// during which *at least one* core of the process was busy. This is the
    /// paper's composite-resource view (Fig. 6): a process is idle only when
    /// all its cores are.
    pub active: Vec<u64>,
    /// Work executed per (process, subiteration).
    pub subiter_work: Vec<Vec<u64>>,
    /// Gantt segments (one per task).
    pub segments: Vec<Segment>,
    /// Inbound transfer segments (one per cross-process message), in
    /// emission order. Empty under free communication.
    pub transfers: Vec<TransferSegment>,
    /// Communication statistics — `Some` whenever a network model was
    /// simulated (including the legacy [`CommModel`] special case).
    pub net: Option<NetStats>,
}

impl SimResult {
    /// Fraction of total core-time spent idle, for a bounded cluster.
    pub fn idle_fraction(&self, cluster: &ClusterConfig) -> f64 {
        let cores = cluster
            .total_cores()
            .expect("idle fraction undefined for unbounded clusters");
        let capacity = self.makespan as f64 * cores as f64;
        if capacity == 0.0 {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().sum();
        1.0 - busy as f64 / capacity
    }

    /// Per-process fraction of the makespan during which the composite
    /// process resource is inactive (Fig. 6's reading).
    pub fn process_inactivity(&self) -> Vec<f64> {
        self.active
            .iter()
            .map(|&a| {
                if self.makespan == 0 {
                    0.0
                } else {
                    1.0 - a as f64 / self.makespan as f64
                }
            })
            .collect()
    }

    /// Sum of executed cost (must equal the DAG's total cost).
    pub fn total_executed(&self) -> u64 {
        self.busy.iter().sum()
    }
}

/// Simulates `graph` on `cluster`, with domains mapped to processes through
/// `process_of` (`process_of[d]` = process of domain `d`).
///
/// # Panics
///
/// Panics if `process_of` is inconsistent with the graph or cluster, or if
/// the DAG deadlocks (cycle — cannot happen for [`TaskGraph`]s built by this
/// workspace).
pub fn simulate(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strategy: Strategy,
) -> SimResult {
    simulate_with_comm(graph, cluster, process_of, strategy, &CommModel::FREE)
}

/// Like [`simulate`], recording structured events into `rec` ([`Clock::Virtual`]
/// domain): a `"flusim.run"` span, one `"flusim.task"` complete event per
/// executed task (track = process, `a` = task id, `b` = subiteration) and
/// closing `"flusim.cores"` / `"flusim.busy"` / `"flusim.active"` /
/// `"flusim.subiter_work"` counters. With a disabled recorder this is
/// exactly [`simulate`] — every emission is a single branch.
pub fn simulate_traced(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strategy: Strategy,
    rec: &Recorder,
) -> SimResult {
    let cores = vec![cluster.cores_per_process; cluster.n_processes];
    simulate_heterogeneous_traced(graph, &cores, process_of, strategy, &CommModel::FREE, rec)
}

/// Like [`simulate`], with an explicit [`CommModel`]: successors of a task on
/// another process become ready only after the communication delay.
pub fn simulate_with_comm(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strategy: Strategy,
    comm: &CommModel,
) -> SimResult {
    let cores = vec![cluster.cores_per_process; cluster.n_processes];
    simulate_heterogeneous(graph, &cores, process_of, strategy, comm)
}

/// Like [`simulate_with_comm`], on a *heterogeneous* cluster: `cores[p]`
/// cores for process `p` (use [`crate::cluster::UNBOUNDED_CORES`] for an
/// unlimited process).
pub fn simulate_heterogeneous(
    graph: &TaskGraph,
    cores: &[usize],
    process_of: &[usize],
    strategy: Strategy,
    comm: &CommModel,
) -> SimResult {
    simulate_heterogeneous_traced(graph, cores, process_of, strategy, comm, Recorder::off())
}

/// Like [`simulate_heterogeneous`], recording structured events into `rec`
/// (see [`simulate_traced`] for the event vocabulary).
pub fn simulate_heterogeneous_traced(
    graph: &TaskGraph,
    cores: &[usize],
    process_of: &[usize],
    strategy: Strategy,
    comm: &CommModel,
    rec: &Recorder,
) -> SimResult {
    simulate_lattice_heterogeneous_traced(graph, cores, process_of, &strategy.into(), comm, rec)
}

/// Simulates `graph` on `cluster` under an arbitrary lattice point
/// ([`DynamicListStrategy`]): the general entry the portfolio racer
/// enumerates. Pinned points behave exactly like [`simulate`]; dynamic
/// process criteria relax the domain→process pinning (see
/// [`crate::lattice::ProcessCriterion`]).
pub fn simulate_lattice(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strat: &DynamicListStrategy,
) -> SimResult {
    simulate_lattice_with_comm(graph, cluster, process_of, strat, &CommModel::FREE)
}

/// Like [`simulate_lattice`], with an explicit [`CommModel`]. A message is
/// charged whenever a dependency crosses from the predecessor's *executing*
/// process to a successor whose *home* process (its domain's owner under
/// `process_of`) differs — under [`ProcessCriterion::Pinned`] this is
/// exactly the legacy cross-process rule.
pub fn simulate_lattice_with_comm(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strat: &DynamicListStrategy,
    comm: &CommModel,
) -> SimResult {
    let cores = vec![cluster.cores_per_process; cluster.n_processes];
    simulate_lattice_heterogeneous_traced(graph, &cores, process_of, strat, comm, Recorder::off())
}

/// Like [`simulate_lattice`], recording structured events into `rec` (see
/// [`simulate_traced`] for the event vocabulary).
pub fn simulate_lattice_traced(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strat: &DynamicListStrategy,
    rec: &Recorder,
) -> SimResult {
    let cores = vec![cluster.cores_per_process; cluster.n_processes];
    simulate_lattice_heterogeneous_traced(graph, &cores, process_of, strat, &CommModel::FREE, rec)
}

/// Like [`simulate_lattice_heterogeneous_traced`], with a free [`CommModel`]
/// replaced by an explicit [`NetworkModel`]: cross-process dependency edges
/// become inbound transfers scheduled on the destination's NIC channels.
/// See [`sim_core`]'s communication semantics below.
pub fn simulate_lattice_with_network(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strat: &DynamicListStrategy,
    net: &NetworkModel,
) -> SimResult {
    simulate_lattice_with_network_traced(graph, cluster, process_of, strat, net, Recorder::off())
}

/// Like [`simulate_lattice_with_network`], recording structured events into
/// `rec`: the vocabulary of [`simulate_traced`] plus one `"net.xfer"`
/// complete event per transfer (track = destination process, `t` = start,
/// `val` = duration, `a` = `src << 32 | channel`, `b` = bytes), a
/// `"net.channels"` counter per process at the start, and closing
/// `"net.bytes"` / `"net.msgs"` counters. `obs::replay::replay_network`
/// reconstructs [`SimResult::net`] from these events bit for bit.
pub fn simulate_lattice_with_network_traced(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strat: &DynamicListStrategy,
    net: &NetworkModel,
    rec: &Recorder,
) -> SimResult {
    let cores = vec![cluster.cores_per_process; cluster.n_processes];
    sim_core(graph, &cores, process_of, strat, Some(net), rec)
}

/// [`simulate_lattice_with_network_traced`] on a heterogeneous cluster
/// (`cores[p]` cores for process `p`).
pub fn simulate_network_heterogeneous_traced(
    graph: &TaskGraph,
    cores: &[usize],
    process_of: &[usize],
    strat: &DynamicListStrategy,
    net: &NetworkModel,
    rec: &Recorder,
) -> SimResult {
    sim_core(graph, cores, process_of, strat, Some(net), rec)
}

/// The generalized heterogeneous lattice entry with the *legacy*
/// [`CommModel`]. A free model skips network bookkeeping entirely; a
/// non-free one is simulated as its pinned network special case
/// ([`NetworkModel::from_comm`]) — same delays, same schedules, bit for
/// bit, for every task graph whose tasks carry at least one object (all
/// generated graphs; an empty message under the old rule paid latency,
/// under the network model it is simply never sent).
pub fn simulate_lattice_heterogeneous_traced(
    graph: &TaskGraph,
    cores: &[usize],
    process_of: &[usize],
    strat: &DynamicListStrategy,
    comm: &CommModel,
    rec: &Recorder,
) -> SimResult {
    if comm.is_free() {
        sim_core(graph, cores, process_of, strat, None, rec)
    } else {
        let net = NetworkModel::from_comm(comm);
        sim_core(graph, cores, process_of, strat, Some(&net), rec)
    }
}

/// The generalized dirty-set event loop — every `simulate*` entry point
/// funnels here.
///
/// # Scheduling semantics
///
/// * **Task order.** Ready tasks are ordered by a per-task priority fixed
///   up front by the [`TaskCriterion`] (higher first), with the
///   [`TieBreak`] over the global readiness sequence as a strict total
///   order among equals.
/// * **Placement.** Under [`ProcessCriterion::Pinned`] each process owns a
///   private ready queue holding the tasks of its domains — the paper's
///   FLUSIM, refilled through the dirty-process set in ascending id order.
///   Under a dynamic criterion all ready tasks share one global queue; at
///   every refill the scheduler repeatedly picks the best free process
///   (ascending-id scan, strict-improvement keep ⇒ lowest id wins ties)
///   and hands it the best ready task, until cores or tasks run out.
/// * **Communication.** When a task completes, each dependency edge whose
///   successor's *home* process (its domain's owner under `process_of`)
///   differs from the executing process sends one message, sized by
///   [`NetworkModel::message_bytes`]. Zero-byte messages are never sent.
///   A real message becomes an inbound transfer on the destination: it
///   starts at `max(now, earliest-free NIC channel)` (lowest channel id
///   wins ties; unbounded channels always start at `now`), lasts
///   `link.latency + bytes × link.cost_per_byte`, and only its *delivery*
///   gates the successor's readiness — compute on every process continues
///   underneath, which is exactly the overlap the paper's runtime banks
///   on. Transfers never pre-empt or share bandwidth retroactively:
///   channel occupancy is decided once, in completion order, keeping the
///   loop allocation-free and the schedule a pure function of its inputs.
///
/// # Panics
///
/// Panics if `process_of` is inconsistent with the graph or cluster, or if
/// the DAG deadlocks (cycle — cannot happen for [`TaskGraph`]s built by
/// this workspace).
fn sim_core(
    graph: &TaskGraph,
    cores: &[usize],
    process_of: &[usize],
    strat: &DynamicListStrategy,
    net: Option<&NetworkModel>,
    rec: &Recorder,
) -> SimResult {
    assert_eq!(process_of.len(), graph.n_domains, "one process per domain");
    assert!(!cores.is_empty(), "need at least one process");
    assert!(cores.iter().all(|&c| c >= 1), "every process needs a core");
    assert!(
        process_of.iter().all(|&p| p < cores.len()),
        "process id out of range"
    );
    let n = graph.len();
    let np = cores.len();
    if let Some(model) = net {
        model.validate(np);
    }

    // NIC bookkeeping, at full capacity before the steady state starts:
    // per-(process, channel) earliest-free times (empty when channels are
    // unbounded — transfers then always start immediately on channel 0)
    // and the transfer log, bounded by one message per dependency edge.
    let bounded_channels = net.map_or(0, |m| {
        if m.channels == UNBOUNDED_CHANNELS {
            0
        } else {
            m.channels
        }
    });
    let mut nic_free: Vec<u64> = vec![0; np * bounded_channels];
    let mut transfers: Vec<TransferSegment> =
        Vec::with_capacity(if net.is_some() { graph.n_edges() } else { 0 });

    // Priority key per task (higher = run first), fixed per task criterion.
    let priority: Vec<i64> = match strat.task {
        TaskCriterion::Fifo | TaskCriterion::Lifo => vec![0; n],
        TaskCriterion::SmallestCost => graph.tasks().iter().map(|t| -(t.cost as i64)).collect(),
        TaskCriterion::LargestCost => graph.tasks().iter().map(|t| t.cost as i64).collect(),
        TaskCriterion::CriticalPath => {
            // Cost-weighted upward rank: longest cost-sum from the task to
            // any sink, inclusive.
            let mut rank = vec![0i64; n];
            for t in (0..n).rev() {
                let down = graph
                    .succs(t as TaskId)
                    .iter()
                    .map(|&s| rank[s as usize])
                    .max()
                    .unwrap_or(0);
                rank[t] = down + graph.task(t as TaskId).cost as i64;
            }
            rank
        }
        TaskCriterion::BottomLevel => {
            // Unweighted bottom level: dependency edges on the longest
            // path from the task to any sink (sinks are level 0).
            let mut rank = vec![0i64; n];
            for t in (0..n).rev() {
                let down = graph
                    .succs(t as TaskId)
                    .iter()
                    .map(|&s| rank[s as usize] + 1)
                    .max()
                    .unwrap_or(0);
                rank[t] = down;
            }
            rank
        }
    };

    let mut indegree: Vec<u32> = (0..n)
        .map(|t| graph.preds(t as TaskId).len() as u32)
        .collect();

    // Ready queues: max-heaps over (priority, tiebreak, task id).
    //
    // Pinned placement gives every process a private queue pre-sized to
    // the number of tasks mapped to it — a task enters its process's queue
    // at most once, so pushes never reallocate inside the event loop.
    // Dynamic placement shares a single global queue (slot 0) pre-sized to
    // the whole DAG, with the same no-reallocation guarantee.
    let pinned = strat.process == ProcessCriterion::Pinned;
    let mut ready: Vec<BinaryHeap<(i64, i64, TaskId)>> = if pinned {
        let mut tasks_on: Vec<usize> = vec![0; np];
        for task in graph.tasks() {
            tasks_on[process_of[task.domain as usize]] += 1;
        }
        tasks_on
            .iter()
            .map(|&c| BinaryHeap::with_capacity(c))
            .collect()
    } else {
        vec![BinaryHeap::with_capacity(n)]
    };
    let mut seq = 0i64;
    // Dirty set of processes whose launch capacity may have changed since
    // the last refill: a core was freed, or a task was pushed onto their
    // ready queue. Between refills every process satisfies
    // `free_cores[p] == 0 || ready[p].is_empty()`, so draining only the
    // dirty processes (in ascending id order, matching the historical full
    // `0..np` sweep) is behaviour-identical while costing O(affected)
    // rather than O(np) per event. Pinned mode only: the dynamic global
    // queue degenerates the dirty set to a single always-checked slot, so
    // its refill runs unconditionally after every event instead.
    let mut dirty: Vec<usize> = Vec::with_capacity(np);
    let mut is_dirty = vec![false; np];
    let push_ready = |ready: &mut Vec<BinaryHeap<(i64, i64, TaskId)>>,
                      t: TaskId,
                      seq: &mut i64,
                      dirty: &mut Vec<usize>,
                      is_dirty: &mut [bool]| {
        let tie = match strat.tie {
            TieBreak::ReverseInsertion => *seq,
            TieBreak::InsertionOrder => -*seq,
        };
        *seq += 1;
        if pinned {
            let p = process_of[graph.task(t).domain as usize];
            ready[p].push((priority[t as usize], tie, t));
            if !is_dirty[p] {
                is_dirty[p] = true;
                dirty.push(p);
            }
        } else {
            ready[0].push((priority[t as usize], tie, t));
        }
    };

    for t in 0..n as TaskId {
        if indegree[t as usize] == 0 {
            push_ready(&mut ready, t, &mut seq, &mut dirty, &mut is_dirty);
        }
    }

    // Event queue: tag 0 = task completion, tag 1 = delayed readiness.
    // Any task owns at most one outstanding event at a time (a tag-1
    // readiness before it runs, or a tag-0 completion while it runs), so
    // the heap never holds more than `n` entries and a capacity of `n`
    // keeps the loop free of reallocation.
    let mut events: BinaryHeap<Reverse<(u64, u8, TaskId)>> = BinaryHeap::with_capacity(n);
    // Earliest-start constraint accumulated from cross-process messages.
    let mut ready_at = vec![0u64; n];
    let mut free_cores: Vec<usize> = cores.to_vec();
    let mut busy = vec![0u64; np];
    let mut subiter_work = vec![vec![0u64; graph.n_subiterations as usize]; np];
    let mut segments: Vec<Segment> = Vec::with_capacity(n);
    // Active-interval tracking per process: count of running tasks and the
    // time the process last became active.
    let mut running = vec![0usize; np];
    let mut active_since = vec![0u64; np];
    let mut active = vec![0u64; np];
    // Where each task executed — equal to its home process when pinned,
    // decided at launch time under a dynamic process criterion. Completion
    // must credit the executing process, not the home.
    let mut ran_on = vec![0u32; n];
    // Σ n_objects of the currently-running tasks per process, the
    // FewestActiveObjects selection key (maintained unconditionally: two
    // u64 adds per task are noise next to the heap traffic).
    let mut active_objects = vec![0u64; np];

    let mut now = 0u64;
    // Loop-invariant tracing flag: the recorder's enabled state never
    // changes mid-run, so hoisting the check keeps the disabled hot path
    // at a register-held branch instead of an atomic load behind two
    // pointer dereferences on every launched task.
    let traced = rec.enabled();
    let launch = |p: usize,
                  t: TaskId,
                  now: u64,
                  events: &mut BinaryHeap<Reverse<(u64, u8, TaskId)>>,
                  free_cores: &mut [usize],
                  running: &mut [usize],
                  active_since: &mut [u64],
                  busy: &mut [u64],
                  subiter_work: &mut [Vec<u64>],
                  segments: &mut Vec<Segment>,
                  ran_on: &mut [u32],
                  active_objects: &mut [u64]| {
        let task = graph.task(t);
        let end = now + task.cost;
        if free_cores[p] != UNBOUNDED_CORES {
            free_cores[p] -= 1;
        }
        if running[p] == 0 {
            active_since[p] = now;
        }
        running[p] += 1;
        busy[p] += task.cost;
        subiter_work[p][task.subiter as usize] += task.cost;
        ran_on[t as usize] = p as u32;
        active_objects[p] += u64::from(task.n_objects);
        segments.push(Segment {
            task: t,
            process: p as u32,
            start: now,
            end,
        });
        // One structured event per executed task. Inside the event loop
        // this never allocates: the per-thread sink already exists (forced
        // by the "flusim.run" span-begin below) and its buffer was created
        // at full capacity, so a push either fits or is counted as dropped.
        if traced {
            rec.complete_at(
                Clock::Virtual,
                "flusim.task",
                p as u32,
                now,
                task.cost,
                u64::from(t),
                u64::from(task.subiter),
            );
        }
        events.push(Reverse((end, 0u8, t)));
    };

    // Open the run span and publish the cluster shape *before* the
    // zero-allocation steady state begins: the first emission on a thread
    // creates its sink (the only allocating enabled path).
    rec.begin_at(
        Clock::Virtual,
        "flusim.run",
        0,
        0,
        n as u64,
        graph.n_subiterations as u64,
    );
    for (p, &c) in cores.iter().enumerate() {
        rec.counter_at(Clock::Virtual, "flusim.cores", p as u32, 0, c as u64);
    }
    if let Some(model) = net {
        // Publish the channel budget so replay can bound `net.xfer`
        // overlap per process (`u64::MAX` = unbounded).
        let ch = if model.channels == UNBOUNDED_CHANNELS {
            u64::MAX
        } else {
            model.channels as u64
        };
        for p in 0..np {
            rec.counter_at(Clock::Virtual, "net.channels", p as u32, 0, ch);
        }
    }

    // Best free process under the dynamic criterion: ascending-id scan
    // keeping the current candidate only on strict improvement, so
    // criterion ties always resolve to the lowest process id. O(np) per
    // launch, allocation-free. (`Pinned` short-circuits like `FirstFree`
    // but is never consulted — pinned refills pop per-process queues.)
    let select_process =
        |free_cores: &[usize], busy: &[u64], active_objects: &[u64]| -> Option<usize> {
            let mut best: Option<usize> = None;
            for p in 0..np {
                if free_cores[p] == 0 {
                    continue;
                }
                match strat.process {
                    ProcessCriterion::Pinned | ProcessCriterion::FirstFree => return Some(p),
                    ProcessCriterion::LeastLoaded => {
                        if best.is_none_or(|b| busy[p] < busy[b]) {
                            best = Some(p);
                        }
                    }
                    ProcessCriterion::FewestActiveObjects => {
                        if best.is_none_or(|b| active_objects[p] < active_objects[b]) {
                            best = Some(p);
                        }
                    }
                }
            }
            best
        };

    // Initial launches. Pinned: a full per-process sweep, after which every
    // process satisfies the refill invariant (no free core, or nothing
    // ready), so the dirty marks from the seeding pushes can be discarded.
    // Dynamic: drain the global queue into the best free processes.
    if pinned {
        for p in 0..np {
            while free_cores[p] > 0 {
                let Some((_, _, t)) = ready[p].pop() else {
                    break;
                };
                launch(
                    p,
                    t,
                    now,
                    &mut events,
                    &mut free_cores,
                    &mut running,
                    &mut active_since,
                    &mut busy,
                    &mut subiter_work,
                    &mut segments,
                    &mut ran_on,
                    &mut active_objects,
                );
            }
        }
    } else {
        while !ready[0].is_empty() {
            let Some(p) = select_process(&free_cores, &busy, &active_objects) else {
                break;
            };
            let (_, _, t) = ready[0].pop().unwrap();
            launch(
                p,
                t,
                now,
                &mut events,
                &mut free_cores,
                &mut running,
                &mut active_since,
                &mut busy,
                &mut subiter_work,
                &mut segments,
                &mut ran_on,
                &mut active_objects,
            );
        }
    }
    dirty.clear();
    is_dirty.fill(false);

    // Steady state begins: every container below is at its peak capacity
    // (events ≤ n, ready[p] ≤ tasks_on[p], dirty ≤ np, segments ≤ n), so
    // the event loop performs no heap allocation. Verified whenever the
    // counting test allocator is installed (see testkit::alloc).
    #[cfg(debug_assertions)]
    let allocs_at_steady_state = tempart_testkit::alloc::allocation_count();

    let mut done = 0usize;
    while let Some(Reverse((time, tag, t))) = events.pop() {
        now = time;
        if tag == 1 {
            // Delayed readiness: the task's messages have now all arrived.
            push_ready(&mut ready, t, &mut seq, &mut dirty, &mut is_dirty);
        } else {
            done += 1;
            // Credit the process the task actually ran on — its home
            // process when pinned, the dynamically selected one otherwise.
            let p = ran_on[t as usize] as usize;
            if free_cores[p] != UNBOUNDED_CORES {
                free_cores[p] += 1;
            }
            if pinned && !is_dirty[p] {
                is_dirty[p] = true;
                dirty.push(p);
            }
            running[p] -= 1;
            if running[p] == 0 {
                active[p] += now - active_since[p];
            }
            active_objects[p] -= u64::from(graph.task(t).n_objects);
            let tp = p;
            for &s in graph.succs(t) {
                // The message travels from the predecessor's executing
                // process to the successor's *home* process (where its
                // domain's data lives) — identical to the legacy
                // cross-process rule whenever placement is pinned.
                let sp = process_of[graph.task(s).domain as usize];
                if sp != tp {
                    if let Some(model) = net {
                        let bytes = model.message_bytes(graph, t, s);
                        // Zero-byte messages are never sent: nothing to
                        // wait for, no channel occupied.
                        if bytes > 0 {
                            let dur = model.topology.link(tp, sp).duration(bytes);
                            let (channel, start) = if bounded_channels == 0 {
                                (0usize, now)
                            } else {
                                // Earliest-free inbound channel of the
                                // destination; strict improvement on the
                                // ascending scan ⇒ lowest id wins ties.
                                let base = sp * bounded_channels;
                                let mut best = 0usize;
                                for c in 1..bounded_channels {
                                    if nic_free[base + c] < nic_free[base + best] {
                                        best = c;
                                    }
                                }
                                (best, now.max(nic_free[base + best]))
                            };
                            let end = start + dur;
                            if bounded_channels != 0 {
                                nic_free[sp * bounded_channels + channel] = end;
                            }
                            transfers.push(TransferSegment {
                                task: s,
                                src: tp as u32,
                                dst: sp as u32,
                                channel: channel as u32,
                                start,
                                end,
                                bytes,
                            });
                            if traced {
                                rec.complete_at(
                                    Clock::Virtual,
                                    "net.xfer",
                                    sp as u32,
                                    start,
                                    dur,
                                    (tp as u64) << 32 | channel as u64,
                                    bytes,
                                );
                            }
                            if end > ready_at[s as usize] {
                                ready_at[s as usize] = end;
                            }
                        }
                    }
                }
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    if ready_at[s as usize] > now {
                        events.push(Reverse((ready_at[s as usize], 1u8, s)));
                    } else {
                        push_ready(&mut ready, s, &mut seq, &mut dirty, &mut is_dirty);
                    }
                }
            }
        }
        if pinned {
            // Fill freed capacity on the processes this event touched.
            // Ascending id order replicates the historical full `0..np`
            // sweep; untouched processes still satisfy `free == 0 || ready
            // empty` from the end of the previous refill, so skipping them
            // cannot change behaviour. Launching never marks new processes
            // dirty (it only pushes completion events), so draining the
            // snapshot is complete.
            dirty.sort_unstable();
            for &q in &dirty {
                while free_cores[q] > 0 && !ready[q].is_empty() {
                    let (_, _, nt) = ready[q].pop().unwrap();
                    launch(
                        q,
                        nt,
                        now,
                        &mut events,
                        &mut free_cores,
                        &mut running,
                        &mut active_since,
                        &mut busy,
                        &mut subiter_work,
                        &mut segments,
                        &mut ran_on,
                        &mut active_objects,
                    );
                }
                is_dirty[q] = false;
            }
            dirty.clear();
        } else {
            // Dynamic refill: hand the best ready task to the best free
            // process until either side runs out. The selection keys
            // (busy, active_objects) are updated by every launch, so the
            // loop re-evaluates the criterion greedily per placement.
            while !ready[0].is_empty() {
                let Some(q) = select_process(&free_cores, &busy, &active_objects) else {
                    break;
                };
                let (_, _, nt) = ready[0].pop().unwrap();
                launch(
                    q,
                    nt,
                    now,
                    &mut events,
                    &mut free_cores,
                    &mut running,
                    &mut active_since,
                    &mut busy,
                    &mut subiter_work,
                    &mut segments,
                    &mut ran_on,
                    &mut active_objects,
                );
            }
        }
    }
    assert_eq!(done, n, "deadlock: {} of {n} tasks executed", done);
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        tempart_testkit::alloc::allocation_count(),
        allocs_at_steady_state,
        "simulator event loop allocated on the heap"
    );

    // Communication accounting — deliberately *after* the zero-allocation
    // steady state (interval unions allocate). The shared
    // `NetStats::from_intervals` constructor is the same code path
    // `obs::replay::replay_network` runs over the `net.*` events, so the
    // replayed statistics are bit-equal by construction.
    let net_stats = net.map(|_| {
        let mut xfer: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); np];
        for tr in &transfers {
            xfer[tr.dst as usize].push((tr.start, tr.end, tr.bytes));
        }
        let mut compute: Vec<Vec<(u64, u64)>> = vec![Vec::new(); np];
        for s in &segments {
            compute[s.process as usize].push((s.start, s.end));
        }
        NetStats::from_intervals(&xfer, &compute)
    });

    // Closing accounting counters (per process, and per process ×
    // subiteration) let trace viewers read the Fig. 6 busy/idle story
    // without replaying the task events; `b` on `subiter_work` carries the
    // subiteration index.
    if rec.enabled() {
        for p in 0..np {
            rec.counter_at(Clock::Virtual, "flusim.busy", p as u32, now, busy[p]);
            rec.counter_at(Clock::Virtual, "flusim.active", p as u32, now, active[p]);
            for (s, &w) in subiter_work[p].iter().enumerate() {
                rec.counter_args_at(
                    Clock::Virtual,
                    "flusim.subiter_work",
                    p as u32,
                    now,
                    w,
                    s as u64,
                    0,
                );
            }
        }
        if let Some(stats) = &net_stats {
            for p in 0..np {
                rec.counter_at(
                    Clock::Virtual,
                    "net.bytes",
                    p as u32,
                    now,
                    stats.bytes_in[p],
                );
                rec.counter_at(Clock::Virtual, "net.msgs", p as u32, now, stats.messages[p]);
            }
        }
        rec.end_at(Clock::Virtual, "flusim.run", 0, now);
    }

    SimResult {
        makespan: now,
        busy,
        active,
        subiter_work,
        segments,
        transfers,
        net: net_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempart_taskgraph::{Task, TaskKind};

    fn mk_task(domain: u32, cost: u64, subiter: u32) -> Task {
        Task {
            subiter,
            tau: 0,
            stage: 0,
            domain,
            kind: TaskKind::CellInternal,
            n_objects: cost as u32,
            cost,
        }
    }

    /// Two independent chains on two domains.
    fn two_chains() -> TaskGraph {
        let tasks = vec![
            mk_task(0, 5, 0),
            mk_task(0, 5, 0),
            mk_task(1, 3, 0),
            mk_task(1, 3, 0),
        ];
        let preds = vec![vec![], vec![0], vec![], vec![2]];
        TaskGraph::assemble(tasks, preds, 2, 1)
    }

    #[test]
    fn chains_on_two_processes() {
        let g = two_chains();
        let cluster = ClusterConfig::new(2, 1);
        let r = simulate(&g, &cluster, &[0, 1], Strategy::EagerFifo);
        assert_eq!(r.makespan, 10);
        assert_eq!(r.busy, vec![10, 6]);
        assert_eq!(r.total_executed(), g.total_cost());
        assert_eq!(r.active, vec![10, 6]);
        let inact = r.process_inactivity();
        assert!((inact[0] - 0.0).abs() < 1e-12);
        assert!((inact[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn chains_on_one_process() {
        let g = two_chains();
        let cluster = ClusterConfig::new(1, 1);
        let r = simulate(&g, &cluster, &[0, 0], Strategy::EagerFifo);
        assert_eq!(r.makespan, 16, "serialised on one core");
        assert!((r.idle_fraction(&cluster)).abs() < 1e-12);
    }

    #[test]
    fn two_cores_overlap_independent_chains() {
        let g = two_chains();
        let cluster = ClusterConfig::new(1, 2);
        let r = simulate(&g, &cluster, &[0, 0], Strategy::EagerFifo);
        assert_eq!(r.makespan, 10);
    }

    #[test]
    fn unbounded_cores_hit_critical_path() {
        // Wide fork: 1 root, 10 children; unbounded cores finish at
        // root + max(child).
        let mut tasks = vec![mk_task(0, 2, 0)];
        let mut preds: Vec<Vec<TaskId>> = vec![vec![]];
        for i in 0..10 {
            tasks.push(mk_task(0, 1 + (i % 3), 0));
            preds.push(vec![0]);
        }
        let g = TaskGraph::assemble(tasks, preds, 1, 1);
        let r = simulate(&g, &ClusterConfig::unbounded(1), &[0], Strategy::EagerFifo);
        assert_eq!(r.makespan, g.critical_path());
    }

    #[test]
    fn makespan_lower_bounds() {
        let g = two_chains();
        for strat in [
            Strategy::EagerFifo,
            Strategy::EagerLifo,
            Strategy::CriticalPathFirst,
            Strategy::SmallestFirst,
        ] {
            let cluster = ClusterConfig::new(2, 1);
            let r = simulate(&g, &cluster, &[0, 1], strat);
            assert!(r.makespan >= g.critical_path());
            let total_cores = cluster.total_cores().unwrap() as u64;
            assert!(r.makespan >= g.total_cost() / total_cores);
            assert_eq!(r.total_executed(), g.total_cost());
        }
    }

    #[test]
    fn dependencies_respected_in_segments() {
        let g = two_chains();
        let r = simulate(&g, &ClusterConfig::new(2, 2), &[0, 1], Strategy::EagerFifo);
        let seg_of = |t: TaskId| r.segments.iter().find(|s| s.task == t).unwrap();
        assert!(seg_of(1).start >= seg_of(0).end);
        assert!(seg_of(3).start >= seg_of(2).end);
    }

    #[test]
    fn comm_model_delays_cross_process_edges() {
        // Chain across two processes: 0 (P0) -> 1 (P1). With latency L, task
        // 1 starts L after task 0 finishes.
        let tasks = vec![mk_task(0, 5, 0), mk_task(1, 3, 0)];
        let preds = vec![vec![], vec![0]];
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let cluster = ClusterConfig::new(2, 1);
        let free = simulate(&g, &cluster, &[0, 1], Strategy::EagerFifo);
        assert_eq!(free.makespan, 8);
        let comm = CommModel {
            latency: 10,
            cost_per_object: 0,
        };
        let delayed = simulate_with_comm(&g, &cluster, &[0, 1], Strategy::EagerFifo, &comm);
        assert_eq!(delayed.makespan, 5 + 10 + 3);
        // Same-process chain is unaffected.
        let local = simulate_with_comm(&g, &cluster, &[0, 0], Strategy::EagerFifo, &comm);
        assert_eq!(local.makespan, 8);
    }

    #[test]
    fn comm_model_scales_with_message_size() {
        let tasks = vec![mk_task(0, 5, 0), mk_task(1, 3, 0)];
        let preds = vec![vec![], vec![0]];
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let cluster = ClusterConfig::new(2, 1);
        let comm = CommModel {
            latency: 1,
            cost_per_object: 2,
        };
        // Pred has n_objects = cost = 5 → delay 1 + 5*2 = 11.
        let r = simulate_with_comm(&g, &cluster, &[0, 1], Strategy::EagerFifo, &comm);
        assert_eq!(r.makespan, 5 + 11 + 3);
        assert_eq!(r.total_executed(), g.total_cost());
    }

    #[test]
    fn heterogeneous_cores_respected() {
        // 4 independent unit tasks on each of two domains; process 0 has 4
        // cores (all parallel), process 1 has 1 core (serial).
        let mut tasks = Vec::new();
        let mut preds: Vec<Vec<TaskId>> = Vec::new();
        for d in 0..2u32 {
            for _ in 0..4 {
                tasks.push(mk_task(d, 3, 0));
                preds.push(vec![]);
            }
        }
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let r = simulate_heterogeneous(&g, &[4, 1], &[0, 1], Strategy::EagerFifo, &CommModel::FREE);
        // Process 0 finishes at 3; process 1 serialises to 12.
        assert_eq!(r.makespan, 12);
        assert_eq!(r.busy, vec![12, 12]);
        assert_eq!(r.active, vec![3, 12]);
    }

    #[test]
    fn subiter_work_accounted() {
        let tasks = vec![mk_task(0, 4, 0), mk_task(0, 6, 1)];
        let preds = vec![vec![], vec![0]];
        let g = TaskGraph::assemble(tasks, preds, 1, 2);
        let r = simulate(&g, &ClusterConfig::new(1, 1), &[0], Strategy::EagerFifo);
        assert_eq!(r.subiter_work[0], vec![4, 6]);
    }

    #[test]
    fn zero_cost_tasks_schedule_cleanly_under_every_combo() {
        // Zero-cost tasks complete at their start instant: the active
        // interval they open closes at zero width, cost criteria rank them
        // first/last, and the busy/total accounting must stay conserved.
        let tasks = vec![
            mk_task(0, 0, 0),
            mk_task(0, 5, 0),
            mk_task(1, 0, 0),
            mk_task(1, 3, 0),
        ];
        let preds = vec![vec![], vec![0], vec![1], vec![2]];
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let cluster = ClusterConfig::new(2, 1);
        for strat in DynamicListStrategy::lattice() {
            let r = simulate_lattice(&g, &cluster, &[0, 1], &strat);
            assert_eq!(
                r.total_executed(),
                g.total_cost(),
                "{}: cost conservation",
                strat.label()
            );
            assert_eq!(
                r.segments.len(),
                g.len(),
                "{}: every task ran",
                strat.label()
            );
            assert_eq!(r.makespan, 8, "{}: chain 0→1→2→3 is 0+5+0+3", strat.label());
        }
    }

    #[test]
    fn single_process_cluster_collapses_the_process_axis() {
        // With one process every placement rule picks process 0, so each
        // task criterion's pinned and dynamic points must produce the very
        // same schedule, bit for bit.
        let g = two_chains();
        let cluster = ClusterConfig::new(1, 2);
        for task in TaskCriterion::ALL {
            let pinned = simulate_lattice(
                &g,
                &cluster,
                &[0, 0],
                &DynamicListStrategy::canonical(task, ProcessCriterion::Pinned),
            );
            for process in [
                ProcessCriterion::FirstFree,
                ProcessCriterion::LeastLoaded,
                ProcessCriterion::FewestActiveObjects,
            ] {
                let dynamic = simulate_lattice(
                    &g,
                    &cluster,
                    &[0, 0],
                    &DynamicListStrategy::canonical(task, process),
                );
                assert_eq!(
                    pinned.segments, dynamic.segments,
                    "{task:?}+{process:?}: single-process schedules diverged"
                );
            }
        }
    }

    #[test]
    fn comm_model_boundary_semantics() {
        // `is_free` is about *both* knobs: per-object cost alone still
        // charges messages, and a zero-object message still pays latency.
        assert!(CommModel::FREE.is_free());
        assert!(!CommModel {
            latency: 0,
            cost_per_object: 1
        }
        .is_free());
        assert!(!CommModel {
            latency: 1,
            cost_per_object: 0
        }
        .is_free());
        let comm = CommModel {
            latency: 7,
            cost_per_object: 2,
        };
        assert_eq!(comm.delay(0), 7, "zero objects still pay latency");
        assert_eq!(comm.delay(3), 13);
    }

    #[test]
    fn dynamic_placement_charges_comm_against_the_successors_home() {
        // Chain 0 → 1 with homes P0 and P1 under FirstFree: task 0 runs on
        // P0 (lowest free id), the message to task 1's *home* (P1) delays
        // its readiness, and then task 1 itself also runs on P0 — placement
        // is free to ignore the home, but the message charge is not.
        let tasks = vec![mk_task(0, 5, 0), mk_task(1, 3, 0)];
        let preds = vec![vec![], vec![0]];
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let cluster = ClusterConfig::new(2, 1);
        let comm = CommModel {
            latency: 10,
            cost_per_object: 0,
        };
        let strat =
            DynamicListStrategy::canonical(TaskCriterion::Fifo, ProcessCriterion::FirstFree);
        let r = simulate_lattice_with_comm(&g, &cluster, &[0, 1], &strat, &comm);
        assert_eq!(r.makespan, 5 + 10 + 3, "cross-home edge pays the delay");
        assert!(
            r.segments.iter().all(|s| s.process == 0),
            "first-free placement keeps both tasks on process 0"
        );
        // Same-home chain pays nothing, wherever it executes.
        let local = simulate_lattice_with_comm(&g, &cluster, &[0, 0], &strat, &comm);
        assert_eq!(local.makespan, 8);
    }

    #[test]
    fn least_loaded_spreads_independent_tasks() {
        // Four independent equal-cost tasks, all homed on domain 0 of a
        // 2-process cluster: pinned serialises all four onto process 0's
        // one core (makespan 12); least-loaded alternates processes
        // (makespan 6).
        let tasks = (0..4).map(|_| mk_task(0, 3, 0)).collect::<Vec<_>>();
        let preds = vec![vec![]; 4];
        let g = TaskGraph::assemble(tasks, preds, 1, 1);
        let cluster = ClusterConfig::new(2, 1);
        let pinned = simulate_lattice(
            &g,
            &cluster,
            &[0],
            &DynamicListStrategy::canonical(TaskCriterion::Fifo, ProcessCriterion::Pinned),
        );
        assert_eq!(pinned.makespan, 12);
        let spread = simulate_lattice(
            &g,
            &cluster,
            &[0],
            &DynamicListStrategy::canonical(TaskCriterion::Fifo, ProcessCriterion::LeastLoaded),
        );
        assert_eq!(spread.makespan, 6, "least-loaded uses both processes");
        assert_eq!(spread.busy, vec![6, 6]);
    }

    #[test]
    fn bounded_channels_serialise_concurrent_transfers() {
        use crate::network::{Link, NetworkModel};
        // Two equal-cost roots on P0/P1 both feed task 2 homed on P2. Both
        // messages arrive at P2's NIC at t=5 with duration 10: one channel
        // serialises them ([5,15) then [15,25)); two channels overlap them.
        let tasks = vec![mk_task(0, 5, 0), mk_task(1, 5, 0), mk_task(2, 3, 0)];
        let preds = vec![vec![], vec![], vec![0, 1]];
        let g = TaskGraph::assemble(tasks, preds, 3, 1);
        let cluster = ClusterConfig::new(3, 1);
        let strat = DynamicListStrategy::from(Strategy::EagerFifo);
        let link = Link {
            latency: 10,
            cost_per_byte: 0,
        };
        let serial = simulate_lattice_with_network(
            &g,
            &cluster,
            &[0, 1, 2],
            &strat,
            &NetworkModel::uniform(link, 1),
        );
        assert_eq!(serial.makespan, 5 + 10 + 10 + 3);
        let t = &serial.transfers;
        assert_eq!(t.len(), 2);
        assert_eq!((t[0].start, t[0].end, t[0].channel), (5, 15, 0));
        assert_eq!((t[1].start, t[1].end, t[1].channel), (15, 25, 0));
        assert_eq!((t[0].src, t[0].dst), (0, 2));
        let parallel = simulate_lattice_with_network(
            &g,
            &cluster,
            &[0, 1, 2],
            &strat,
            &NetworkModel::uniform(link, 2),
        );
        assert_eq!(parallel.makespan, 5 + 10 + 3);
        assert_eq!(parallel.transfers[1].channel, 1, "second transfer spills");
        let unbounded = simulate_lattice_with_network(
            &g,
            &cluster,
            &[0, 1, 2],
            &strat,
            &NetworkModel::uniform(link, crate::network::UNBOUNDED_CHANNELS),
        );
        assert_eq!(unbounded.makespan, parallel.makespan);
    }

    #[test]
    fn network_from_comm_is_bit_identical_to_legacy_comm() {
        use crate::network::NetworkModel;
        let tasks = vec![mk_task(0, 5, 0), mk_task(1, 3, 0), mk_task(1, 4, 0)];
        let preds = vec![vec![], vec![0], vec![1]];
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let cluster = ClusterConfig::new(2, 1);
        let comm = CommModel {
            latency: 4,
            cost_per_object: 3,
        };
        for strat in DynamicListStrategy::lattice() {
            let legacy = simulate_lattice_with_comm(&g, &cluster, &[0, 1], &strat, &comm);
            let net = simulate_lattice_with_network(
                &g,
                &cluster,
                &[0, 1],
                &strat,
                &NetworkModel::from_comm(&comm),
            );
            assert_eq!(legacy.makespan, net.makespan, "{}", strat.label());
            assert_eq!(legacy.segments, net.segments, "{}", strat.label());
            assert_eq!(legacy.transfers, net.transfers, "{}", strat.label());
            assert_eq!(legacy.net, net.net, "{}", strat.label());
        }
    }

    #[test]
    fn overlap_statistics_count_hidden_transfer_time() {
        use crate::network::{Link, NetworkModel};
        // P0 runs A (cost 10) whose output feeds C homed on P1; P1 runs an
        // independent B (cost 20) meanwhile. The transfer [10,18) to P1 is
        // entirely hidden under B's compute, so overlap efficiency is 1.
        let tasks = vec![mk_task(0, 10, 0), mk_task(1, 20, 0), mk_task(1, 5, 0)];
        let preds = vec![vec![], vec![], vec![0]];
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let cluster = ClusterConfig::new(2, 2);
        let strat = DynamicListStrategy::from(Strategy::EagerFifo);
        let net = NetworkModel::uniform(
            Link {
                latency: 8,
                cost_per_byte: 0,
            },
            1,
        );
        let r = simulate_lattice_with_network(&g, &cluster, &[0, 1], &strat, &net);
        assert_eq!(r.makespan, 23, "C runs [18, 23)");
        let stats = r.net.expect("network stats present");
        assert_eq!(stats.comm_busy, vec![0, 8]);
        assert_eq!(stats.comm_active, vec![0, 8]);
        assert_eq!(stats.hidden, vec![0, 8]);
        assert_eq!(stats.bytes_in, vec![0, 10], "A carries n_objects = cost");
        assert_eq!(stats.messages, vec![0, 1]);
        assert_eq!(stats.total_comm_time(), 8);
        assert_eq!(stats.overlap_efficiency().to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn zero_cost_network_matches_free_simulation_bit_for_bit() {
        use crate::network::NetworkModel;
        let g = two_chains();
        let cluster = ClusterConfig::new(2, 1);
        for strat in DynamicListStrategy::lattice() {
            let free = simulate_lattice(&g, &cluster, &[0, 1], &strat);
            let zero = simulate_lattice_with_network(
                &g,
                &cluster,
                &[0, 1],
                &strat,
                &NetworkModel::zero_cost(),
            );
            assert_eq!(free.makespan, zero.makespan, "{}", strat.label());
            assert_eq!(free.segments, zero.segments, "{}", strat.label());
            assert_eq!(free.busy, zero.busy, "{}", strat.label());
            assert!(free.net.is_none() && zero.net.is_some());
        }
    }

    #[test]
    fn halo_sizes_charge_adjacent_domains_and_free_same_domain_edges() {
        use crate::network::{HaloBytes, Link, MessageSizes, NetworkModel};
        let link = Link {
            latency: 100,
            cost_per_byte: 1,
        };
        let strat = DynamicListStrategy::from(Strategy::EagerFifo);
        let cluster = ClusterConfig::new(2, 1);

        // Pinned cross-domain chain 0(d0)→1(d1): the halo between adjacent
        // domains 0 and 1 is 6 bytes → delay 106.
        let tasks = vec![mk_task(0, 5, 0), mk_task(1, 3, 0)];
        let g = TaskGraph::assemble(tasks, vec![vec![], vec![0]], 2, 1);
        let mut net = NetworkModel::uniform(link, 1);
        net.sizes = MessageSizes::Halo(HaloBytes::from_pairs(2, &[(0, 1, 6)]));
        let r = simulate_lattice_with_network(&g, &cluster, &[0, 1], &strat, &net);
        assert_eq!(r.transfers.len(), 1);
        assert_eq!(r.transfers[0].bytes, 6);
        assert_eq!(r.makespan, 5 + 106 + 3);

        // Same-domain cross-process edge: two independent domain-0 roots
        // under FirstFree land on P0 and P1; the successor (also domain 0,
        // home P0) depends on the P1-executed root. That edge crosses
        // processes but stays inside the domain — under halo sizes it
        // carries zero bytes and is never sent.
        let tasks = vec![mk_task(0, 5, 0), mk_task(0, 5, 0), mk_task(0, 3, 0)];
        let g = TaskGraph::assemble(tasks, vec![vec![], vec![], vec![1]], 1, 1);
        let dynamic =
            DynamicListStrategy::canonical(TaskCriterion::Fifo, ProcessCriterion::FirstFree);
        let mut halo_net = NetworkModel::uniform(link, 1);
        halo_net.sizes = MessageSizes::Halo(HaloBytes::from_pairs(1, &[]));
        let free = simulate_lattice_with_network(&g, &cluster, &[0], &dynamic, &halo_net);
        assert!(free.transfers.is_empty(), "same-domain edge sends nothing");
        assert_eq!(free.makespan, 5 + 3);
        // The per-object rule on the same schedule *does* charge it.
        let charged = simulate_lattice_with_network(
            &g,
            &cluster,
            &[0],
            &dynamic,
            &NetworkModel::uniform(link, 1),
        );
        assert_eq!(charged.transfers.len(), 1);
        assert_eq!(charged.makespan, 5 + 105 + 3);
    }

    #[test]
    fn empty_task_graph_simulates_to_zero() {
        let g = TaskGraph::assemble(vec![], vec![], 1, 1);
        for strat in DynamicListStrategy::lattice() {
            let r = simulate_lattice(&g, &ClusterConfig::new(2, 2), &[0], &strat);
            assert_eq!(r.makespan, 0, "{}", strat.label());
            assert_eq!(r.busy, vec![0, 0]);
            assert_eq!(r.total_executed(), 0);
            assert!(r.segments.is_empty());
        }
    }
}
