//! Event-driven list scheduling of a task DAG on an emulated cluster.

use crate::cluster::{ClusterConfig, UNBOUNDED_CORES};
use crate::trace::Segment;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tempart_obs::{Clock, Recorder};
use tempart_taskgraph::{TaskGraph, TaskId};

/// Inter-process communication model.
///
/// The paper's FLUSIM deliberately ignores communication ("No communication
/// or runtime overheads are considered"); this optional model extends it so
/// the §VII trade-off (MC_TL's larger cut vs its better balance) can be
/// quantified. A dependency edge whose endpoint tasks live on different
/// processes delays the successor's readiness by
/// `latency + n_objects(pred) × cost_per_object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommModel {
    /// Fixed per-message delay, in cost units.
    pub latency: u64,
    /// Per-transferred-object delay (∝ message size), in cost units.
    pub cost_per_object: u64,
}

impl CommModel {
    /// The idealized model: communication is free (the paper's FLUSIM).
    pub const FREE: CommModel = CommModel {
        latency: 0,
        cost_per_object: 0,
    };

    /// Delay contributed by one cross-process edge from a task with
    /// `n_objects` transferred objects.
    pub fn delay(&self, n_objects: u32) -> u64 {
        self.latency + u64::from(n_objects) * self.cost_per_object
    }

    /// True when the model adds no delay.
    pub fn is_free(&self) -> bool {
        self.latency == 0 && self.cost_per_object == 0
    }
}

/// Ready-queue policy per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// First-ready-first-served — the eager policy the paper uses as its
    /// optimal reference in unbounded configurations.
    EagerFifo,
    /// Last-ready-first-served (depth-first tendency).
    EagerLifo,
    /// Highest upward rank first (critical-path-aware, HEFT-like).
    CriticalPathFirst,
    /// Cheapest task first.
    SmallestFirst,
}

/// Outcome of a simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the last task, in cost units.
    pub makespan: u64,
    /// Σ task cost executed per process.
    pub busy: Vec<u64>,
    /// Length of the union of each process's active intervals: the time
    /// during which *at least one* core of the process was busy. This is the
    /// paper's composite-resource view (Fig. 6): a process is idle only when
    /// all its cores are.
    pub active: Vec<u64>,
    /// Work executed per (process, subiteration).
    pub subiter_work: Vec<Vec<u64>>,
    /// Gantt segments (one per task).
    pub segments: Vec<Segment>,
}

impl SimResult {
    /// Fraction of total core-time spent idle, for a bounded cluster.
    pub fn idle_fraction(&self, cluster: &ClusterConfig) -> f64 {
        let cores = cluster
            .total_cores()
            .expect("idle fraction undefined for unbounded clusters");
        let capacity = self.makespan as f64 * cores as f64;
        if capacity == 0.0 {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().sum();
        1.0 - busy as f64 / capacity
    }

    /// Per-process fraction of the makespan during which the composite
    /// process resource is inactive (Fig. 6's reading).
    pub fn process_inactivity(&self) -> Vec<f64> {
        self.active
            .iter()
            .map(|&a| {
                if self.makespan == 0 {
                    0.0
                } else {
                    1.0 - a as f64 / self.makespan as f64
                }
            })
            .collect()
    }

    /// Sum of executed cost (must equal the DAG's total cost).
    pub fn total_executed(&self) -> u64 {
        self.busy.iter().sum()
    }
}

/// Simulates `graph` on `cluster`, with domains mapped to processes through
/// `process_of` (`process_of[d]` = process of domain `d`).
///
/// # Panics
///
/// Panics if `process_of` is inconsistent with the graph or cluster, or if
/// the DAG deadlocks (cycle — cannot happen for [`TaskGraph`]s built by this
/// workspace).
pub fn simulate(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strategy: Strategy,
) -> SimResult {
    simulate_with_comm(graph, cluster, process_of, strategy, &CommModel::FREE)
}

/// Like [`simulate`], recording structured events into `rec` ([`Clock::Virtual`]
/// domain): a `"flusim.run"` span, one `"flusim.task"` complete event per
/// executed task (track = process, `a` = task id, `b` = subiteration) and
/// closing `"flusim.cores"` / `"flusim.busy"` / `"flusim.active"` /
/// `"flusim.subiter_work"` counters. With a disabled recorder this is
/// exactly [`simulate`] — every emission is a single branch.
pub fn simulate_traced(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strategy: Strategy,
    rec: &Recorder,
) -> SimResult {
    let cores = vec![cluster.cores_per_process; cluster.n_processes];
    simulate_heterogeneous_traced(graph, &cores, process_of, strategy, &CommModel::FREE, rec)
}

/// Like [`simulate`], with an explicit [`CommModel`]: successors of a task on
/// another process become ready only after the communication delay.
pub fn simulate_with_comm(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    strategy: Strategy,
    comm: &CommModel,
) -> SimResult {
    let cores = vec![cluster.cores_per_process; cluster.n_processes];
    simulate_heterogeneous(graph, &cores, process_of, strategy, comm)
}

/// Like [`simulate_with_comm`], on a *heterogeneous* cluster: `cores[p]`
/// cores for process `p` (use [`crate::cluster::UNBOUNDED_CORES`] for an
/// unlimited process).
pub fn simulate_heterogeneous(
    graph: &TaskGraph,
    cores: &[usize],
    process_of: &[usize],
    strategy: Strategy,
    comm: &CommModel,
) -> SimResult {
    simulate_heterogeneous_traced(graph, cores, process_of, strategy, comm, Recorder::off())
}

/// Like [`simulate_heterogeneous`], recording structured events into `rec`
/// (see [`simulate_traced`] for the event vocabulary).
pub fn simulate_heterogeneous_traced(
    graph: &TaskGraph,
    cores: &[usize],
    process_of: &[usize],
    strategy: Strategy,
    comm: &CommModel,
    rec: &Recorder,
) -> SimResult {
    assert_eq!(process_of.len(), graph.n_domains, "one process per domain");
    assert!(!cores.is_empty(), "need at least one process");
    assert!(cores.iter().all(|&c| c >= 1), "every process needs a core");
    assert!(
        process_of.iter().all(|&p| p < cores.len()),
        "process id out of range"
    );
    let n = graph.len();
    let np = cores.len();

    // Priority key per task (higher = run first), fixed per strategy.
    let priority: Vec<i64> = match strategy {
        Strategy::EagerFifo | Strategy::EagerLifo => vec![0; n],
        Strategy::SmallestFirst => graph.tasks().iter().map(|t| -(t.cost as i64)).collect(),
        Strategy::CriticalPathFirst => {
            // Upward rank: longest path from the task to any sink.
            let mut rank = vec![0i64; n];
            for t in (0..n).rev() {
                let down = graph
                    .succs(t as TaskId)
                    .iter()
                    .map(|&s| rank[s as usize])
                    .max()
                    .unwrap_or(0);
                rank[t] = down + graph.task(t as TaskId).cost as i64;
            }
            rank
        }
    };

    let mut indegree: Vec<u32> = (0..n)
        .map(|t| graph.preds(t as TaskId).len() as u32)
        .collect();

    // Per-process ready queue: max-heap over (priority, tiebreak).
    // FIFO: older sequence first; LIFO: newer first.
    //
    // Heaps are pre-sized to the number of tasks mapped to each process —
    // a task enters its process's queue at most once, so the queue length
    // can never exceed that count and pushes never reallocate inside the
    // event loop.
    let mut tasks_on: Vec<usize> = vec![0; np];
    for task in graph.tasks() {
        tasks_on[process_of[task.domain as usize]] += 1;
    }
    let mut ready: Vec<BinaryHeap<(i64, i64, TaskId)>> = tasks_on
        .iter()
        .map(|&c| BinaryHeap::with_capacity(c))
        .collect();
    let mut seq = 0i64;
    // Dirty set of processes whose launch capacity may have changed since
    // the last refill: a core was freed, or a task was pushed onto their
    // ready queue. Between refills every process satisfies
    // `free_cores[p] == 0 || ready[p].is_empty()`, so draining only the
    // dirty processes (in ascending id order, matching the historical full
    // `0..np` sweep) is behaviour-identical while costing O(affected)
    // rather than O(np) per event.
    let mut dirty: Vec<usize> = Vec::with_capacity(np);
    let mut is_dirty = vec![false; np];
    let push_ready = |ready: &mut Vec<BinaryHeap<(i64, i64, TaskId)>>,
                      t: TaskId,
                      seq: &mut i64,
                      dirty: &mut Vec<usize>,
                      is_dirty: &mut [bool]| {
        let p = process_of[graph.task(t).domain as usize];
        let tie = match strategy {
            Strategy::EagerLifo => *seq,
            _ => -*seq,
        };
        ready[p].push((priority[t as usize], tie, t));
        *seq += 1;
        if !is_dirty[p] {
            is_dirty[p] = true;
            dirty.push(p);
        }
    };

    for t in 0..n as TaskId {
        if indegree[t as usize] == 0 {
            push_ready(&mut ready, t, &mut seq, &mut dirty, &mut is_dirty);
        }
    }

    // Event queue: tag 0 = task completion, tag 1 = delayed readiness.
    // Any task owns at most one outstanding event at a time (a tag-1
    // readiness before it runs, or a tag-0 completion while it runs), so
    // the heap never holds more than `n` entries and a capacity of `n`
    // keeps the loop free of reallocation.
    let mut events: BinaryHeap<Reverse<(u64, u8, TaskId)>> = BinaryHeap::with_capacity(n);
    // Earliest-start constraint accumulated from cross-process messages.
    let mut ready_at = vec![0u64; n];
    let mut free_cores: Vec<usize> = cores.to_vec();
    let mut busy = vec![0u64; np];
    let mut subiter_work = vec![vec![0u64; graph.n_subiterations as usize]; np];
    let mut segments: Vec<Segment> = Vec::with_capacity(n);
    // Active-interval tracking per process: count of running tasks and the
    // time the process last became active.
    let mut running = vec![0usize; np];
    let mut active_since = vec![0u64; np];
    let mut active = vec![0u64; np];

    let mut now = 0u64;
    // Loop-invariant tracing flag: the recorder's enabled state never
    // changes mid-run, so hoisting the check keeps the disabled hot path
    // at a register-held branch instead of an atomic load behind two
    // pointer dereferences on every launched task.
    let traced = rec.enabled();
    let launch = |p: usize,
                  t: TaskId,
                  now: u64,
                  events: &mut BinaryHeap<Reverse<(u64, u8, TaskId)>>,
                  free_cores: &mut [usize],
                  running: &mut [usize],
                  active_since: &mut [u64],
                  busy: &mut [u64],
                  subiter_work: &mut [Vec<u64>],
                  segments: &mut Vec<Segment>| {
        let task = graph.task(t);
        let end = now + task.cost;
        if free_cores[p] != UNBOUNDED_CORES {
            free_cores[p] -= 1;
        }
        if running[p] == 0 {
            active_since[p] = now;
        }
        running[p] += 1;
        busy[p] += task.cost;
        subiter_work[p][task.subiter as usize] += task.cost;
        segments.push(Segment {
            task: t,
            process: p as u32,
            start: now,
            end,
        });
        // One structured event per executed task. Inside the event loop
        // this never allocates: the per-thread sink already exists (forced
        // by the "flusim.run" span-begin below) and its buffer was created
        // at full capacity, so a push either fits or is counted as dropped.
        if traced {
            rec.complete_at(
                Clock::Virtual,
                "flusim.task",
                p as u32,
                now,
                task.cost,
                u64::from(t),
                u64::from(task.subiter),
            );
        }
        events.push(Reverse((end, 0u8, t)));
    };

    // Open the run span and publish the cluster shape *before* the
    // zero-allocation steady state begins: the first emission on a thread
    // creates its sink (the only allocating enabled path).
    rec.begin_at(
        Clock::Virtual,
        "flusim.run",
        0,
        0,
        n as u64,
        graph.n_subiterations as u64,
    );
    for (p, &c) in cores.iter().enumerate() {
        rec.counter_at(Clock::Virtual, "flusim.cores", p as u32, 0, c as u64);
    }

    // Initial launches: a full sweep, after which every process satisfies
    // the refill invariant (no free core, or nothing ready), so the dirty
    // marks from the seeding pushes can be discarded.
    for p in 0..np {
        while free_cores[p] > 0 {
            let Some((_, _, t)) = ready[p].pop() else {
                break;
            };
            launch(
                p,
                t,
                now,
                &mut events,
                &mut free_cores,
                &mut running,
                &mut active_since,
                &mut busy,
                &mut subiter_work,
                &mut segments,
            );
        }
    }
    dirty.clear();
    is_dirty.fill(false);

    // Steady state begins: every container below is at its peak capacity
    // (events ≤ n, ready[p] ≤ tasks_on[p], dirty ≤ np, segments ≤ n), so
    // the event loop performs no heap allocation. Verified whenever the
    // counting test allocator is installed (see testkit::alloc).
    #[cfg(debug_assertions)]
    let allocs_at_steady_state = tempart_testkit::alloc::allocation_count();

    let mut done = 0usize;
    while let Some(Reverse((time, tag, t))) = events.pop() {
        now = time;
        if tag == 1 {
            // Delayed readiness: the task's messages have now all arrived.
            push_ready(&mut ready, t, &mut seq, &mut dirty, &mut is_dirty);
        } else {
            done += 1;
            let p = process_of[graph.task(t).domain as usize];
            if free_cores[p] != UNBOUNDED_CORES {
                free_cores[p] += 1;
            }
            if !is_dirty[p] {
                is_dirty[p] = true;
                dirty.push(p);
            }
            running[p] -= 1;
            if running[p] == 0 {
                active[p] += now - active_since[p];
            }
            let tp = p;
            for &s in graph.succs(t) {
                let sp = process_of[graph.task(s).domain as usize];
                if sp != tp && !comm.is_free() {
                    let arrive = now + comm.delay(graph.task(t).n_objects);
                    ready_at[s as usize] = ready_at[s as usize].max(arrive);
                }
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    if ready_at[s as usize] > now {
                        events.push(Reverse((ready_at[s as usize], 1u8, s)));
                    } else {
                        push_ready(&mut ready, s, &mut seq, &mut dirty, &mut is_dirty);
                    }
                }
            }
        }
        // Fill freed capacity on the processes this event touched. Ascending
        // id order replicates the historical full `0..np` sweep; untouched
        // processes still satisfy `free == 0 || ready empty` from the end of
        // the previous refill, so skipping them cannot change behaviour.
        // Launching never marks new processes dirty (it only pushes
        // completion events), so draining the snapshot is complete.
        dirty.sort_unstable();
        for &q in &dirty {
            while free_cores[q] > 0 && !ready[q].is_empty() {
                let (_, _, nt) = ready[q].pop().unwrap();
                launch(
                    q,
                    nt,
                    now,
                    &mut events,
                    &mut free_cores,
                    &mut running,
                    &mut active_since,
                    &mut busy,
                    &mut subiter_work,
                    &mut segments,
                );
            }
            is_dirty[q] = false;
        }
        dirty.clear();
    }
    assert_eq!(done, n, "deadlock: {} of {n} tasks executed", done);
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        tempart_testkit::alloc::allocation_count(),
        allocs_at_steady_state,
        "simulator event loop allocated on the heap"
    );

    // Closing accounting counters (per process, and per process ×
    // subiteration) let trace viewers read the Fig. 6 busy/idle story
    // without replaying the task events; `b` on `subiter_work` carries the
    // subiteration index.
    if rec.enabled() {
        for p in 0..np {
            rec.counter_at(Clock::Virtual, "flusim.busy", p as u32, now, busy[p]);
            rec.counter_at(Clock::Virtual, "flusim.active", p as u32, now, active[p]);
            for (s, &w) in subiter_work[p].iter().enumerate() {
                rec.counter_args_at(
                    Clock::Virtual,
                    "flusim.subiter_work",
                    p as u32,
                    now,
                    w,
                    s as u64,
                    0,
                );
            }
        }
        rec.end_at(Clock::Virtual, "flusim.run", 0, now);
    }

    SimResult {
        makespan: now,
        busy,
        active,
        subiter_work,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempart_taskgraph::{Task, TaskKind};

    fn mk_task(domain: u32, cost: u64, subiter: u32) -> Task {
        Task {
            subiter,
            tau: 0,
            stage: 0,
            domain,
            kind: TaskKind::CellInternal,
            n_objects: cost as u32,
            cost,
        }
    }

    /// Two independent chains on two domains.
    fn two_chains() -> TaskGraph {
        let tasks = vec![
            mk_task(0, 5, 0),
            mk_task(0, 5, 0),
            mk_task(1, 3, 0),
            mk_task(1, 3, 0),
        ];
        let preds = vec![vec![], vec![0], vec![], vec![2]];
        TaskGraph::assemble(tasks, preds, 2, 1)
    }

    #[test]
    fn chains_on_two_processes() {
        let g = two_chains();
        let cluster = ClusterConfig::new(2, 1);
        let r = simulate(&g, &cluster, &[0, 1], Strategy::EagerFifo);
        assert_eq!(r.makespan, 10);
        assert_eq!(r.busy, vec![10, 6]);
        assert_eq!(r.total_executed(), g.total_cost());
        assert_eq!(r.active, vec![10, 6]);
        let inact = r.process_inactivity();
        assert!((inact[0] - 0.0).abs() < 1e-12);
        assert!((inact[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn chains_on_one_process() {
        let g = two_chains();
        let cluster = ClusterConfig::new(1, 1);
        let r = simulate(&g, &cluster, &[0, 0], Strategy::EagerFifo);
        assert_eq!(r.makespan, 16, "serialised on one core");
        assert!((r.idle_fraction(&cluster)).abs() < 1e-12);
    }

    #[test]
    fn two_cores_overlap_independent_chains() {
        let g = two_chains();
        let cluster = ClusterConfig::new(1, 2);
        let r = simulate(&g, &cluster, &[0, 0], Strategy::EagerFifo);
        assert_eq!(r.makespan, 10);
    }

    #[test]
    fn unbounded_cores_hit_critical_path() {
        // Wide fork: 1 root, 10 children; unbounded cores finish at
        // root + max(child).
        let mut tasks = vec![mk_task(0, 2, 0)];
        let mut preds: Vec<Vec<TaskId>> = vec![vec![]];
        for i in 0..10 {
            tasks.push(mk_task(0, 1 + (i % 3), 0));
            preds.push(vec![0]);
        }
        let g = TaskGraph::assemble(tasks, preds, 1, 1);
        let r = simulate(&g, &ClusterConfig::unbounded(1), &[0], Strategy::EagerFifo);
        assert_eq!(r.makespan, g.critical_path());
    }

    #[test]
    fn makespan_lower_bounds() {
        let g = two_chains();
        for strat in [
            Strategy::EagerFifo,
            Strategy::EagerLifo,
            Strategy::CriticalPathFirst,
            Strategy::SmallestFirst,
        ] {
            let cluster = ClusterConfig::new(2, 1);
            let r = simulate(&g, &cluster, &[0, 1], strat);
            assert!(r.makespan >= g.critical_path());
            let total_cores = cluster.total_cores().unwrap() as u64;
            assert!(r.makespan >= g.total_cost() / total_cores);
            assert_eq!(r.total_executed(), g.total_cost());
        }
    }

    #[test]
    fn dependencies_respected_in_segments() {
        let g = two_chains();
        let r = simulate(&g, &ClusterConfig::new(2, 2), &[0, 1], Strategy::EagerFifo);
        let seg_of = |t: TaskId| r.segments.iter().find(|s| s.task == t).unwrap();
        assert!(seg_of(1).start >= seg_of(0).end);
        assert!(seg_of(3).start >= seg_of(2).end);
    }

    #[test]
    fn comm_model_delays_cross_process_edges() {
        // Chain across two processes: 0 (P0) -> 1 (P1). With latency L, task
        // 1 starts L after task 0 finishes.
        let tasks = vec![mk_task(0, 5, 0), mk_task(1, 3, 0)];
        let preds = vec![vec![], vec![0]];
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let cluster = ClusterConfig::new(2, 1);
        let free = simulate(&g, &cluster, &[0, 1], Strategy::EagerFifo);
        assert_eq!(free.makespan, 8);
        let comm = CommModel {
            latency: 10,
            cost_per_object: 0,
        };
        let delayed = simulate_with_comm(&g, &cluster, &[0, 1], Strategy::EagerFifo, &comm);
        assert_eq!(delayed.makespan, 5 + 10 + 3);
        // Same-process chain is unaffected.
        let local = simulate_with_comm(&g, &cluster, &[0, 0], Strategy::EagerFifo, &comm);
        assert_eq!(local.makespan, 8);
    }

    #[test]
    fn comm_model_scales_with_message_size() {
        let tasks = vec![mk_task(0, 5, 0), mk_task(1, 3, 0)];
        let preds = vec![vec![], vec![0]];
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let cluster = ClusterConfig::new(2, 1);
        let comm = CommModel {
            latency: 1,
            cost_per_object: 2,
        };
        // Pred has n_objects = cost = 5 → delay 1 + 5*2 = 11.
        let r = simulate_with_comm(&g, &cluster, &[0, 1], Strategy::EagerFifo, &comm);
        assert_eq!(r.makespan, 5 + 11 + 3);
        assert_eq!(r.total_executed(), g.total_cost());
    }

    #[test]
    fn heterogeneous_cores_respected() {
        // 4 independent unit tasks on each of two domains; process 0 has 4
        // cores (all parallel), process 1 has 1 core (serial).
        let mut tasks = Vec::new();
        let mut preds: Vec<Vec<TaskId>> = Vec::new();
        for d in 0..2u32 {
            for _ in 0..4 {
                tasks.push(mk_task(d, 3, 0));
                preds.push(vec![]);
            }
        }
        let g = TaskGraph::assemble(tasks, preds, 2, 1);
        let r = simulate_heterogeneous(&g, &[4, 1], &[0, 1], Strategy::EagerFifo, &CommModel::FREE);
        // Process 0 finishes at 3; process 1 serialises to 12.
        assert_eq!(r.makespan, 12);
        assert_eq!(r.busy, vec![12, 12]);
        assert_eq!(r.active, vec![3, 12]);
    }

    #[test]
    fn subiter_work_accounted() {
        let tasks = vec![mk_task(0, 4, 0), mk_task(0, 6, 1)];
        let preds = vec![vec![], vec![0]];
        let g = TaskGraph::assemble(tasks, preds, 1, 2);
        let r = simulate(&g, &ClusterConfig::new(1, 1), &[0], Strategy::EagerFifo);
        assert_eq!(r.subiter_work[0], vec![4, 6]);
    }
}
