//! The scheduler strategy lattice: dynamic list scheduling parameterised
//! over a *task criterion* × *process criterion* × *tie-break*.
//!
//! The four fixed [`Strategy`](crate::Strategy) policies are named points in
//! this lattice (see [`DynamicListStrategy::from`]); the cross-product opens
//! the scenario axis the ROADMAP asks for — "which scheduler wins for which
//! τ-distribution" — following the `DynamicListScheduler` /
//! `PortfolioScheduler` design of dslab-dag (Sukhoroslov et al.) adapted to
//! FLUSIM's pinned-by-default, integer-cost, zero-overhead setting.
//!
//! # Determinism
//!
//! Every combination is a pure function of `(graph, cores, process_of,
//! comm)`:
//!
//! * ready tasks are ordered by `(criterion priority, tie, task id)` — the
//!   tie is a unique global readiness sequence number, so no two queued
//!   tasks ever compare equal;
//! * dynamic process selection scans processes in ascending id and keeps
//!   the *first* best candidate, so criterion ties always resolve to the
//!   lowest process id;
//! * the event queue orders by `(time, tag, task id)`, unique per entry.
//!
//! There is no hash-map iteration, OS entropy or thread scheduling anywhere
//! in the loop, so two runs of any combination agree bit for bit.

use crate::sim::Strategy;

/// Which ready task a process (or the global pool) runs next.
///
/// Higher priority runs first; ties fall through to the
/// [`TieBreak`]. `Fifo`/`Lifo` assign uniform priority so the tie-break
/// *is* the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskCriterion {
    /// Uniform priority — oldest-ready first under the canonical tie-break.
    Fifo,
    /// Uniform priority — newest-ready first under the canonical tie-break.
    Lifo,
    /// Cheapest task first (shortest-job-first).
    SmallestCost,
    /// Most expensive task first (longest-job-first).
    LargestCost,
    /// Highest cost-weighted upward rank first (HEFT-like critical path:
    /// the longest cost-sum from the task to any sink, inclusive).
    CriticalPath,
    /// Deepest task first by *unweighted* bottom level: the number of
    /// dependency edges on the longest path from the task to any sink.
    BottomLevel,
}

impl TaskCriterion {
    /// All task criteria, in the fixed lattice enumeration order.
    pub const ALL: [TaskCriterion; 6] = [
        TaskCriterion::Fifo,
        TaskCriterion::Lifo,
        TaskCriterion::SmallestCost,
        TaskCriterion::LargestCost,
        TaskCriterion::CriticalPath,
        TaskCriterion::BottomLevel,
    ];

    /// Short stable label used in leaderboards and fingerprint files.
    pub fn label(self) -> &'static str {
        match self {
            TaskCriterion::Fifo => "fifo",
            TaskCriterion::Lifo => "lifo",
            TaskCriterion::SmallestCost => "smallest",
            TaskCriterion::LargestCost => "largest",
            TaskCriterion::CriticalPath => "critpath",
            TaskCriterion::BottomLevel => "bottomlvl",
        }
    }

    /// The tie-break under which this criterion reproduces its historical
    /// fixed-strategy behaviour: LIFO breaks ties newest-first, everything
    /// else oldest-first (matching [`Strategy`]'s pre-lattice semantics).
    pub fn canonical_tie(self) -> TieBreak {
        match self {
            TaskCriterion::Lifo => TieBreak::ReverseInsertion,
            _ => TieBreak::InsertionOrder,
        }
    }
}

/// Which process executes the selected task.
///
/// `Pinned` is the paper's FLUSIM: a task runs on the process that owns its
/// domain (`process_of`), so the simulator evaluates the *mapping*. The
/// dynamic criteria relax the pinning — any process with a free core may
/// take the task — turning FLUSIM into a work-conserving list scheduler
/// whose makespan lower-bounds what the mapping leaves on the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessCriterion {
    /// Respect `process_of`: the task runs on its domain's home process.
    Pinned,
    /// Lowest-id process with a free core.
    FirstFree,
    /// Free process with the least total cost launched so far
    /// (ties → lowest id).
    LeastLoaded,
    /// Free process whose currently-running tasks carry the fewest
    /// transferred objects (Σ `n_objects`; ties → lowest id) — a proxy for
    /// the process with the least in-flight halo state.
    FewestActiveObjects,
}

impl ProcessCriterion {
    /// All process criteria, in the fixed lattice enumeration order.
    pub const ALL: [ProcessCriterion; 4] = [
        ProcessCriterion::Pinned,
        ProcessCriterion::FirstFree,
        ProcessCriterion::LeastLoaded,
        ProcessCriterion::FewestActiveObjects,
    ];

    /// Short stable label used in leaderboards and fingerprint files.
    pub fn label(self) -> &'static str {
        match self {
            ProcessCriterion::Pinned => "pinned",
            ProcessCriterion::FirstFree => "firstfree",
            ProcessCriterion::LeastLoaded => "leastload",
            ProcessCriterion::FewestActiveObjects => "fewestobj",
        }
    }
}

/// Total order among equal-priority ready tasks.
///
/// The readiness sequence number is globally unique (one per push), so
/// either direction yields a *strict* total order — no two queued entries
/// ever compare equal, which is what makes every lattice point
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieBreak {
    /// Oldest-ready first (FIFO among equals).
    InsertionOrder,
    /// Newest-ready first (LIFO among equals).
    ReverseInsertion,
}

impl TieBreak {
    /// Short stable label used in leaderboards and fingerprint files.
    pub fn label(self) -> &'static str {
        match self {
            TieBreak::InsertionOrder => "fifo-tie",
            TieBreak::ReverseInsertion => "lifo-tie",
        }
    }
}

/// One point of the scheduler lattice: task criterion × process criterion ×
/// tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DynamicListStrategy {
    /// Ready-queue ordering.
    pub task: TaskCriterion,
    /// Process placement rule.
    pub process: ProcessCriterion,
    /// Total-order tie-break among equal-priority ready tasks.
    pub tie: TieBreak,
}

impl DynamicListStrategy {
    /// The lattice point for `(task, process)` with the task criterion's
    /// canonical tie-break ([`TaskCriterion::canonical_tie`]).
    pub fn canonical(task: TaskCriterion, process: ProcessCriterion) -> Self {
        Self {
            task,
            process,
            tie: task.canonical_tie(),
        }
    }

    /// Enumerates the canonical lattice in the fixed portfolio order:
    /// task-criterion-major over [`TaskCriterion::ALL`] ×
    /// [`ProcessCriterion::ALL`] — 24 combinations. Combo index `i` maps to
    /// `ALL_TASK[i / 4] × ALL_PROC[i % 4]`; the racing leaderboard and the
    /// golden fingerprints are defined over this order.
    pub fn lattice() -> Vec<DynamicListStrategy> {
        let mut combos = Vec::with_capacity(TaskCriterion::ALL.len() * ProcessCriterion::ALL.len());
        for task in TaskCriterion::ALL {
            for process in ProcessCriterion::ALL {
                combos.push(DynamicListStrategy::canonical(task, process));
            }
        }
        combos
    }

    /// `"<task>+<process>"` — stable display label (the tie-break is
    /// canonical for every enumerated combo and therefore omitted).
    pub fn label(&self) -> String {
        format!("{}+{}", self.task.label(), self.process.label())
    }
}

impl From<Strategy> for DynamicListStrategy {
    /// The four legacy strategies as named lattice points. These produce
    /// bit-identical schedules to the pre-lattice fixed implementations —
    /// pinned by the Gantt fingerprints in `tests/determinism.rs`.
    fn from(s: Strategy) -> Self {
        let task = match s {
            Strategy::EagerFifo => TaskCriterion::Fifo,
            Strategy::EagerLifo => TaskCriterion::Lifo,
            Strategy::CriticalPathFirst => TaskCriterion::CriticalPath,
            Strategy::SmallestFirst => TaskCriterion::SmallestCost,
        };
        DynamicListStrategy::canonical(task, ProcessCriterion::Pinned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_enumerates_24_unique_combos() {
        let combos = DynamicListStrategy::lattice();
        assert_eq!(combos.len(), 24);
        for (i, c) in combos.iter().enumerate() {
            assert_eq!(c.task, TaskCriterion::ALL[i / 4]);
            assert_eq!(c.process, ProcessCriterion::ALL[i % 4]);
            assert_eq!(c.tie, c.task.canonical_tie());
            // Labels are unique — they key leaderboard rows.
            for other in &combos[..i] {
                assert_ne!(other.label(), c.label());
            }
        }
    }

    #[test]
    fn legacy_strategies_map_to_pinned_points() {
        for s in [
            Strategy::EagerFifo,
            Strategy::EagerLifo,
            Strategy::CriticalPathFirst,
            Strategy::SmallestFirst,
        ] {
            let d = DynamicListStrategy::from(s);
            assert_eq!(d.process, ProcessCriterion::Pinned);
        }
        assert_eq!(
            DynamicListStrategy::from(Strategy::EagerLifo).tie,
            TieBreak::ReverseInsertion
        );
        assert_eq!(
            DynamicListStrategy::from(Strategy::EagerFifo).tie,
            TieBreak::InsertionOrder
        );
    }
}
