//! Cluster configuration and domain→process mapping.

/// Sentinel for an unlimited number of cores per process, used by the
/// paper's Fig. 6 experiment ("the number of cores per node is greater than
/// the maximum number of ready tasks available at any given time").
pub const UNBOUNDED_CORES: usize = usize::MAX;

/// The emulated cluster: `n_processes` MPI ranks with `cores_per_process`
/// workers each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of MPI processes.
    pub n_processes: usize,
    /// Worker cores per process; [`UNBOUNDED_CORES`] removes the limit.
    pub cores_per_process: usize,
}

impl ClusterConfig {
    /// A bounded cluster.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_processes: usize, cores_per_process: usize) -> Self {
        assert!(n_processes >= 1, "need at least one process");
        assert!(cores_per_process >= 1, "need at least one core per process");
        Self {
            n_processes,
            cores_per_process,
        }
    }

    /// A cluster with unlimited cores per process (Fig. 6 configuration).
    pub fn unbounded(n_processes: usize) -> Self {
        Self {
            n_processes: n_processes.max(1),
            cores_per_process: UNBOUNDED_CORES,
        }
    }

    /// Total core count; `None` when unbounded.
    pub fn total_cores(&self) -> Option<usize> {
        if self.cores_per_process == UNBOUNDED_CORES {
            None
        } else {
            Some(self.n_processes * self.cores_per_process)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_and_unbounded() {
        let c = ClusterConfig::new(16, 32);
        assert_eq!(c.total_cores(), Some(512));
        let u = ClusterConfig::unbounded(64);
        assert_eq!(u.total_cores(), None);
        assert_eq!(u.cores_per_process, UNBOUNDED_CORES);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = ClusterConfig::new(4, 0);
    }
}
