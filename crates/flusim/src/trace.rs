//! Gantt traces: segments, ASCII rendering and CSV export.

use tempart_taskgraph::{TaskGraph, TaskId};

/// One executed task occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Task executed.
    pub task: TaskId,
    /// Process it ran on.
    pub process: u32,
    /// Start time (cost units).
    pub start: u64,
    /// End time (cost units).
    pub end: u64,
}

/// Per-bin, per-subiteration busy time for an ASCII/Gantt rendering:
/// `occupancy[p][bin * n_subiters + sub]` is the exact time (cost units,
/// fractional at bin edges) that process `p` spent in subiteration `sub`
/// inside time bin `bin`.
///
/// Accumulation is in `f64` with **no per-chunk rounding**: a segment
/// contributes its exact overlap with every bin it touches, so sub-bin
/// slivers (e.g. a unit task crossing a fractional bin boundary) are never
/// rounded away, and the per-process total equals the busy time up to
/// floating-point addition error. A segment ending exactly on a bin
/// boundary contributes only to the bins strictly before the boundary.
pub fn bin_occupancy(
    graph: &TaskGraph,
    segments: &[Segment],
    n_processes: usize,
    makespan: u64,
    width: usize,
) -> Vec<Vec<f64>> {
    let width = width.max(1);
    let ns = graph.n_subiterations.max(1) as usize;
    let mut busy = vec![vec![0f64; width * ns]; n_processes];
    if makespan == 0 {
        return busy;
    }
    let bin_len = makespan as f64 / width as f64;
    for s in segments {
        let sub = graph.task(s.task).subiter as usize;
        let start = s.start as f64;
        let end = s.end as f64;
        if end <= start {
            continue;
        }
        let first = ((start / bin_len) as usize).min(width - 1);
        // One past the last bin with positive overlap. `ceil` maps an end
        // exactly on a bin boundary to that boundary's index (no empty
        // trailing bin); floating-point drift that lands `end / bin_len`
        // just above an integer adds a ~0-length chunk, which exact
        // accumulation renders harmless. The lower bound keeps segments
        // entirely inside one bin (`last == first` after `min(width)`)
        // contributing to that bin.
        let last = ((end / bin_len).ceil() as usize).min(width).max(first + 1);
        for bin in first..last {
            let lo = bin as f64 * bin_len;
            let hi = lo + bin_len;
            let chunk = end.min(hi) - start.max(lo);
            if chunk > 0.0 {
                busy[s.process as usize][bin * ns + sub] += chunk;
            }
        }
    }
    busy
}

/// Renders an ASCII Gantt chart: one row per process, `width` time bins.
/// Each bin shows the dominant subiteration as a digit (`0`–`9`, then
/// `a`–`z`), or `.` when the process is mostly idle in the bin — mirroring
/// the paper's "tasks are color-coded according to their subiteration".
pub fn ascii_gantt(
    graph: &TaskGraph,
    segments: &[Segment],
    n_processes: usize,
    makespan: u64,
    width: usize,
) -> String {
    let width = width.max(1);
    if makespan == 0 {
        return String::new();
    }
    let ns = graph.n_subiterations.max(1) as usize;
    let busy = bin_occupancy(graph, segments, n_processes, makespan, width);
    let bin_len = makespan as f64 / width as f64;
    let glyph = |sub: usize| -> char {
        if sub < 10 {
            (b'0' + sub as u8) as char
        } else {
            (b'a' + (sub - 10).min(25) as u8) as char
        }
    };
    let mut out = String::new();
    for (p, row) in busy.iter().enumerate() {
        out.push_str(&format!("P{p:<3}|"));
        for bin in 0..width {
            let slice = &row[bin * ns..(bin + 1) * ns];
            let total: f64 = slice.iter().sum();
            if total < bin_len * 0.05 {
                out.push('.');
            } else {
                let dominant = slice
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                out.push(glyph(dominant));
            }
        }
        out.push('\n');
    }
    out
}

/// Serialises segments to CSV (`process,task,subiter,tau,domain,kind,start,end`).
pub fn segments_csv(graph: &TaskGraph, segments: &[Segment]) -> String {
    let mut out = String::from("process,task,subiter,tau,domain,kind,start,end\n");
    for s in segments {
        let t = graph.task(s.task);
        out.push_str(&format!(
            "{},{},{},{},{},{:?},{},{}\n",
            s.process, s.task, t.subiter, t.tau, t.domain, t.kind, s.start, s.end
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempart_taskgraph::{Task, TaskGraph, TaskKind};

    fn tiny_graph() -> TaskGraph {
        let tasks = vec![
            Task {
                subiter: 0,
                tau: 0,
                stage: 0,
                domain: 0,
                kind: TaskKind::CellInternal,
                n_objects: 4,
                cost: 4,
            },
            Task {
                subiter: 1,
                tau: 0,
                stage: 0,
                domain: 0,
                kind: TaskKind::CellInternal,
                n_objects: 4,
                cost: 4,
            },
        ];
        TaskGraph::assemble(tasks, vec![vec![], vec![0]], 1, 2)
    }

    #[test]
    fn gantt_shows_subiterations() {
        let g = tiny_graph();
        let segments = vec![
            Segment {
                task: 0,
                process: 0,
                start: 0,
                end: 4,
            },
            Segment {
                task: 1,
                process: 0,
                start: 4,
                end: 8,
            },
        ];
        let s = ascii_gantt(&g, &segments, 1, 8, 8);
        assert!(s.starts_with("P0  |"));
        let row = s.trim_end().trim_start_matches("P0  |");
        assert_eq!(row.len(), 8);
        assert!(row.contains('0') && row.contains('1'), "{row}");
    }

    #[test]
    fn gantt_idle_is_dots() {
        let g = tiny_graph();
        let segments = vec![Segment {
            task: 0,
            process: 0,
            start: 0,
            end: 4,
        }];
        let s = ascii_gantt(&g, &segments, 2, 8, 8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].ends_with("........"), "{}", lines[1]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let g = tiny_graph();
        let segments = vec![Segment {
            task: 0,
            process: 0,
            start: 0,
            end: 4,
        }];
        let csv = segments_csv(&g, &segments);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 8);
        assert!(lines[1].starts_with("0,0,0,0,0,CellInternal,0,4"));
    }

    #[test]
    fn empty_trace() {
        let g = tiny_graph();
        assert_eq!(ascii_gantt(&g, &[], 1, 0, 10), "");
    }

    /// `n` independent single-unit tasks on domain 0, subiteration 0.
    fn unit_graph(n: usize) -> TaskGraph {
        let tasks = (0..n)
            .map(|_| Task {
                subiter: 0,
                tau: 0,
                stage: 0,
                domain: 0,
                kind: TaskKind::CellInternal,
                n_objects: 1,
                cost: 1,
            })
            .collect();
        TaskGraph::assemble(tasks, vec![vec![]; n], 1, 1)
    }

    /// Regression: eight concurrent single-unit tasks in `[3,4)` overlap
    /// bin 0 of a width-3 / makespan-10 chart by 1/3 each — 2.67 units of
    /// busy time in that bin. The pre-fix renderer rounded each sub-bin
    /// chunk to 0 *before* summing, so the bin showed as idle (`.`) even
    /// though the process was far above the 5% threshold.
    #[test]
    fn sub_bin_segments_are_not_rounded_away() {
        let g = unit_graph(8);
        let segments: Vec<Segment> = (0..8)
            .map(|t| Segment {
                task: t,
                process: 0,
                start: 3,
                end: 4,
            })
            .collect();
        let occ = bin_occupancy(&g, &segments, 1, 10, 3);
        // bin_len = 10/3; bin 0 gets 8 × (10/3 − 3) ≈ 2.67 units.
        assert!(
            (occ[0][0] - 8.0 * (10.0 / 3.0 - 3.0)).abs() < 1e-9,
            "bin 0 occupancy lost: {}",
            occ[0][0]
        );
        let s = ascii_gantt(&g, &segments, 1, 10, 3);
        let row = s.trim_end().trim_start_matches("P0  |");
        assert_eq!(row.len(), 3);
        assert_eq!(
            &row[0..2],
            "00",
            "bins overlapped by sub-bin chunks must not render idle: {row:?}"
        );
    }

    /// Occupancy is conservative: summed over bins it equals each
    /// segment's exact duration, including segments that end exactly on a
    /// bin boundary (the pre-fix `last` clamp could smear or drop edge
    /// chunks once rounding was involved).
    #[test]
    fn bin_occupancy_conserves_busy_time() {
        let g = unit_graph(5);
        // Mix of boundary-aligned and straddling unit segments
        // (makespan 7, width 3 → fractional bin_len 7/3).
        let segments = [
            (0u32, 0u64, 1u64), // inside bin 0
            (1, 2, 3),          // straddles the 7/3 boundary
            (2, 4, 5),          // straddles the 14/3 boundary
            (3, 6, 7),          // ends exactly at makespan
            (4, 0, 7),          // spans everything
        ]
        .iter()
        .map(|&(task, start, end)| Segment {
            task,
            process: 0,
            start,
            end,
        })
        .collect::<Vec<_>>();
        for width in [1usize, 2, 3, 5, 7, 13] {
            let occ = bin_occupancy(&g, &segments, 1, 7, width);
            let total: f64 = occ[0].iter().sum();
            let expected: f64 = segments.iter().map(|s| (s.end - s.start) as f64).sum();
            assert!(
                (total - expected).abs() < 1e-9,
                "width {width}: occupancy {total} != busy {expected}"
            );
        }
    }
}
