//! Gantt traces: segments, ASCII rendering and CSV export.

use tempart_taskgraph::{TaskGraph, TaskId};

/// One executed task occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Task executed.
    pub task: TaskId,
    /// Process it ran on.
    pub process: u32,
    /// Start time (cost units).
    pub start: u64,
    /// End time (cost units).
    pub end: u64,
}

/// Renders an ASCII Gantt chart: one row per process, `width` time bins.
/// Each bin shows the dominant subiteration as a digit (`0`–`9`, then
/// `a`–`z`), or `.` when the process is mostly idle in the bin — mirroring
/// the paper's "tasks are color-coded according to their subiteration".
pub fn ascii_gantt(
    graph: &TaskGraph,
    segments: &[Segment],
    n_processes: usize,
    makespan: u64,
    width: usize,
) -> String {
    let width = width.max(1);
    if makespan == 0 {
        return String::new();
    }
    // busy[p][bin][subiter] accumulated as (bin -> per-subiter time) maps.
    let ns = graph.n_subiterations.max(1) as usize;
    let mut busy = vec![vec![0u64; width * ns]; n_processes];
    let bin_len = makespan as f64 / width as f64;
    for s in segments {
        let sub = graph.task(s.task).subiter as usize;
        let start = s.start as f64;
        let end = s.end as f64;
        if end <= start {
            continue;
        }
        let first = ((start / bin_len) as usize).min(width - 1);
        let last = ((end / bin_len).ceil() as usize).clamp(first + 1, width);
        for bin in first..last {
            let lo = bin as f64 * bin_len;
            let hi = lo + bin_len;
            let chunk = end.min(hi) - start.max(lo);
            if chunk > 0.0 {
                busy[s.process as usize][bin * ns + sub] += chunk.round() as u64;
            }
        }
    }
    let glyph = |sub: usize| -> char {
        if sub < 10 {
            (b'0' + sub as u8) as char
        } else {
            (b'a' + (sub - 10).min(25) as u8) as char
        }
    };
    let mut out = String::new();
    for (p, row) in busy.iter().enumerate() {
        out.push_str(&format!("P{p:<3}|"));
        for bin in 0..width {
            let slice = &row[bin * ns..(bin + 1) * ns];
            let total: u64 = slice.iter().sum();
            if (total as f64) < bin_len * 0.05 {
                out.push('.');
            } else {
                let dominant = slice
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &v)| v)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                out.push(glyph(dominant));
            }
        }
        out.push('\n');
    }
    out
}

/// Serialises segments to CSV (`process,task,subiter,tau,domain,kind,start,end`).
pub fn segments_csv(graph: &TaskGraph, segments: &[Segment]) -> String {
    let mut out = String::from("process,task,subiter,tau,domain,kind,start,end\n");
    for s in segments {
        let t = graph.task(s.task);
        out.push_str(&format!(
            "{},{},{},{},{},{:?},{},{}\n",
            s.process, s.task, t.subiter, t.tau, t.domain, t.kind, s.start, s.end
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempart_taskgraph::{Task, TaskGraph, TaskKind};

    fn tiny_graph() -> TaskGraph {
        let tasks = vec![
            Task {
                subiter: 0,
                tau: 0,
                stage: 0,
                domain: 0,
                kind: TaskKind::CellInternal,
                n_objects: 4,
                cost: 4,
            },
            Task {
                subiter: 1,
                tau: 0,
                stage: 0,
                domain: 0,
                kind: TaskKind::CellInternal,
                n_objects: 4,
                cost: 4,
            },
        ];
        TaskGraph::assemble(tasks, vec![vec![], vec![0]], 1, 2)
    }

    #[test]
    fn gantt_shows_subiterations() {
        let g = tiny_graph();
        let segments = vec![
            Segment {
                task: 0,
                process: 0,
                start: 0,
                end: 4,
            },
            Segment {
                task: 1,
                process: 0,
                start: 4,
                end: 8,
            },
        ];
        let s = ascii_gantt(&g, &segments, 1, 8, 8);
        assert!(s.starts_with("P0  |"));
        let row = s.trim_end().trim_start_matches("P0  |");
        assert_eq!(row.len(), 8);
        assert!(row.contains('0') && row.contains('1'), "{row}");
    }

    #[test]
    fn gantt_idle_is_dots() {
        let g = tiny_graph();
        let segments = vec![Segment {
            task: 0,
            process: 0,
            start: 0,
            end: 4,
        }];
        let s = ascii_gantt(&g, &segments, 2, 8, 8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].ends_with("........"), "{}", lines[1]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let g = tiny_graph();
        let segments = vec![Segment {
            task: 0,
            process: 0,
            start: 0,
            end: 4,
        }];
        let csv = segments_csv(&g, &segments);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 8);
        assert!(lines[1].starts_with("0,0,0,0,0,CellInternal,0,4"));
    }

    #[test]
    fn empty_trace() {
        let g = tiny_graph();
        assert_eq!(ascii_gantt(&g, &[], 1, 0, 10), "");
    }
}
