//! Deterministic network model: per-process-pair links, halo-derived
//! message sizes and NIC-channel transfer scheduling.
//!
//! The paper's FLUSIM deliberately models zero communication; this module
//! makes the edge cut of a decomposition cost something. A cross-process
//! dependency edge becomes an inbound *transfer* on the destination
//! process: it occupies one NIC channel for
//! `latency + bytes × cost_per_byte` cost units (store-and-forward, not
//! pipelined), overlaps freely with unrelated compute on the same process,
//! and gates only the waiting task's readiness. The legacy
//! [`CommModel`] is a pinned special case ([`NetworkModel::from_comm`]):
//! a uniform topology, per-object sizes and unbounded channels reproduce
//! the old `latency + n_objects × cost_per_object` delays bit for bit.
//!
//! Everything is a pure function of its inputs — no clocks, no randomness —
//! so network-mode simulations stay bit-identical at every worker count.

use crate::sim::CommModel;
use tempart_taskgraph::{DomainDecomposition, TaskGraph, TaskId};

/// `channels` value meaning a process can receive any number of transfers
/// concurrently — no inbound NIC contention.
pub const UNBOUNDED_CHANNELS: usize = usize::MAX;

/// One directed link: a fixed wire latency plus a per-byte serialization
/// cost (the inverse bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Fixed per-message delay, in cost units.
    pub latency: u64,
    /// Cost per transferred byte, in cost units — the inverse bandwidth
    /// (`0` = infinite bandwidth).
    pub cost_per_byte: u64,
}

impl Link {
    /// A link that costs nothing.
    pub const FREE: Link = Link {
        latency: 0,
        cost_per_byte: 0,
    };

    /// Store-and-forward duration of one `bytes`-sized message.
    pub fn duration(&self, bytes: u64) -> u64 {
        self.latency + bytes * self.cost_per_byte
    }
}

/// Which link each ordered process pair uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of distinct processes uses the same link.
    Uniform(Link),
    /// Processes are packed onto nodes of `procs_per_node` consecutive
    /// ranks: pairs on the same node use `intra`, pairs on different nodes
    /// use `inter`.
    TwoLevel {
        /// Consecutive ranks per node (≥ 1).
        procs_per_node: usize,
        /// Link between processes on the same node.
        intra: Link,
        /// Link between processes on different nodes.
        inter: Link,
    },
    /// Explicit per-pair matrix: the link from `src` to `dst` is
    /// `links[src * n + dst]`.
    Matrix {
        /// Number of processes the matrix covers.
        n: usize,
        /// Row-major `n × n` link matrix.
        links: Vec<Link>,
    },
}

impl Topology {
    /// The link a message from `src` to `dst` travels over.
    pub fn link(&self, src: usize, dst: usize) -> Link {
        match self {
            Topology::Uniform(l) => *l,
            Topology::TwoLevel {
                procs_per_node,
                intra,
                inter,
            } => {
                if src / procs_per_node == dst / procs_per_node {
                    *intra
                } else {
                    *inter
                }
            }
            Topology::Matrix { n, links } => links[src * n + dst],
        }
    }
}

/// How many bytes a cross-process dependency edge carries. Zero-byte
/// messages are never sent: they cost nothing and occupy no channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageSizes {
    /// One byte per transferred object of the predecessor task — the size
    /// rule of the legacy [`CommModel`], kept so that model stays a pinned
    /// special case.
    PerObject,
    /// Halo-exchange sizes: the bytes between two *domains* are their
    /// shared interface faces times a per-face payload. Cross-process edges
    /// between tasks of the *same* domain carry nothing — the domain's
    /// state already lives at its home process.
    Halo(HaloBytes),
}

/// Per-domain-pair message sizes derived from the halo edge cut of a
/// [`DomainDecomposition`] (CSR over the sorted neighbour lists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloBytes {
    offsets: Vec<u32>,
    neighbor: Vec<u32>,
    bytes: Vec<u64>,
}

impl HaloBytes {
    /// Sizes from a decomposition: domain pair `(a, b)` exchanges
    /// `halo_faces_between(a, b) × payload_per_face` bytes.
    pub fn from_decomposition(dd: &DomainDecomposition, payload_per_face: u64) -> Self {
        let mut offsets = Vec::with_capacity(dd.n_domains + 1);
        let mut neighbor = Vec::new();
        let mut bytes = Vec::new();
        offsets.push(0u32);
        for d in 0..dd.n_domains as u32 {
            for (n, faces) in dd.halo_of(d) {
                neighbor.push(n);
                bytes.push(u64::from(faces) * payload_per_face);
            }
            offsets.push(neighbor.len() as u32);
        }
        Self {
            offsets,
            neighbor,
            bytes,
        }
    }

    /// Sizes from explicit symmetric `(domain_a, domain_b, bytes)` pairs —
    /// handy for synthetic task graphs that have no mesh behind them.
    ///
    /// # Panics
    ///
    /// Panics if a pair is listed twice or connects a domain to itself.
    pub fn from_pairs(n_domains: usize, pairs: &[(u32, u32, u64)]) -> Self {
        let mut rows: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n_domains];
        for &(a, b, sz) in pairs {
            assert_ne!(a, b, "a domain has no halo with itself");
            rows[a as usize].push((b, sz));
            rows[b as usize].push((a, sz));
        }
        let mut offsets = Vec::with_capacity(n_domains + 1);
        let mut neighbor = Vec::new();
        let mut bytes = Vec::new();
        offsets.push(0u32);
        for mut row in rows {
            row.sort_unstable_by_key(|&(n, _)| n);
            for w in row.windows(2) {
                assert_ne!(w[0].0, w[1].0, "duplicate domain pair");
            }
            for (n, sz) in row {
                neighbor.push(n);
                bytes.push(sz);
            }
            offsets.push(neighbor.len() as u32);
        }
        Self {
            offsets,
            neighbor,
            bytes,
        }
    }

    /// Bytes of one halo message between domains `a` and `b` (0 when not
    /// adjacent or equal).
    pub fn between(&self, a: u32, b: u32) -> u64 {
        let lo = self.offsets[a as usize] as usize;
        let hi = self.offsets[a as usize + 1] as usize;
        match self.neighbor[lo..hi].binary_search(&b) {
            Ok(i) => self.bytes[lo + i],
            Err(_) => 0,
        }
    }
}

/// The deterministic network model the event loop prices transfers with:
/// a topology (who is far from whom), a per-process inbound channel budget
/// and a message-size rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkModel {
    /// Per-process-pair links.
    pub topology: Topology,
    /// Inbound NIC channels per process — concurrent transfers beyond this
    /// queue on the earliest-free channel. [`UNBOUNDED_CHANNELS`] disables
    /// contention entirely.
    pub channels: usize,
    /// Message-size rule.
    pub sizes: MessageSizes,
}

impl NetworkModel {
    /// A uniform topology with `channels` inbound channels per process and
    /// per-object message sizes (attach halo sizes with
    /// [`Self::with_halo`]).
    pub fn uniform(link: Link, channels: usize) -> Self {
        Self {
            topology: Topology::Uniform(link),
            channels,
            sizes: MessageSizes::PerObject,
        }
    }

    /// A two-level node/cluster topology (see [`Topology::TwoLevel`]).
    pub fn two_level(procs_per_node: usize, intra: Link, inter: Link, channels: usize) -> Self {
        Self {
            topology: Topology::TwoLevel {
                procs_per_node,
                intra,
                inter,
            },
            channels,
            sizes: MessageSizes::PerObject,
        }
    }

    /// An explicit `n × n` link matrix (row-major, `links[src * n + dst]`).
    ///
    /// # Panics
    ///
    /// Panics if `links.len() != n * n`.
    pub fn matrix(n: usize, links: Vec<Link>, channels: usize) -> Self {
        assert_eq!(links.len(), n * n, "matrix topology needs n×n links");
        Self {
            topology: Topology::Matrix { n, links },
            channels,
            sizes: MessageSizes::PerObject,
        }
    }

    /// The zero-cost network: free links, no contention. Simulating under
    /// this model reproduces the no-comm `simulate_lattice` schedules bit
    /// for bit (transfers of zero duration never delay readiness).
    pub fn zero_cost() -> Self {
        Self::uniform(Link::FREE, UNBOUNDED_CHANNELS)
    }

    /// The legacy [`CommModel`] as a network model: uniform
    /// `{latency, cost_per_byte = cost_per_object}` links, per-object
    /// sizes, unbounded channels. For any task graph whose tasks all carry
    /// at least one object (every generated graph — the generator skips
    /// empty object sets) the resulting schedule is bit-identical to the
    /// old `simulate_with_comm` arithmetic.
    pub fn from_comm(comm: &CommModel) -> Self {
        Self::uniform(
            Link {
                latency: comm.latency,
                cost_per_byte: comm.cost_per_object,
            },
            UNBOUNDED_CHANNELS,
        )
    }

    /// Switches the size rule to halo-exchange sizes derived from `dd` at
    /// `payload_per_face` bytes per shared interface face.
    pub fn with_halo(mut self, dd: &DomainDecomposition, payload_per_face: u64) -> Self {
        self.sizes = MessageSizes::Halo(HaloBytes::from_decomposition(dd, payload_per_face));
        self
    }

    /// Bytes of the message for dependency edge `t → s` (0 = no message).
    pub fn message_bytes(&self, graph: &TaskGraph, t: TaskId, s: TaskId) -> u64 {
        match &self.sizes {
            MessageSizes::PerObject => u64::from(graph.task(t).n_objects),
            MessageSizes::Halo(h) => h.between(graph.task(t).domain, graph.task(s).domain),
        }
    }

    /// Checks the model is consistent with an `np`-process cluster.
    ///
    /// # Panics
    ///
    /// Panics on zero channels, a zero-size node, or a matrix whose order
    /// differs from `np`.
    pub fn validate(&self, np: usize) {
        assert!(self.channels >= 1, "a process needs at least one channel");
        match &self.topology {
            Topology::Uniform(_) => {}
            Topology::TwoLevel { procs_per_node, .. } => {
                assert!(*procs_per_node >= 1, "a node holds at least one process");
            }
            Topology::Matrix { n, .. } => {
                assert_eq!(*n, np, "matrix topology order must match the cluster");
            }
        }
    }
}

/// One inbound transfer scheduled on a destination NIC channel — the
/// communication counterpart of a Gantt [`crate::trace::Segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferSegment {
    /// The waiting (successor) task the message unblocks.
    pub task: TaskId,
    /// Sending process (where the predecessor executed).
    pub src: u32,
    /// Receiving process (the successor's home).
    pub dst: u32,
    /// NIC channel index on the destination (always 0 under
    /// [`UNBOUNDED_CHANNELS`]).
    pub channel: u32,
    /// Transfer start, in cost units.
    pub start: u64,
    /// Transfer end — the delivery instant the successor may start at.
    pub end: u64,
    /// Message size in bytes.
    pub bytes: u64,
}

/// Parses a `--net` CLI preset into a [`NetworkModel`]. Message sizes
/// default to [`MessageSizes::PerObject`]; pipeline entry points attach
/// halo sizes from the decomposition they build.
///
/// Grammar (all numeric fields optional, colon-separated):
///
/// * `zero` — the zero-cost network;
/// * `uniform[:LAT[:CPB[:CH]]]` — uniform links, default `200:2:2`;
/// * `two-level[:LAT[:CPB[:PPN[:CH]]]]` — `LAT`/`CPB` describe the
///   *inter-node* link, the intra-node link is 10× lower latency and half
///   the per-byte cost; default `400:2:4:2` (4 processes per node).
///
/// `CH` may be `unbounded` for [`UNBOUNDED_CHANNELS`].
pub fn parse_preset(s: &str) -> Result<NetworkModel, String> {
    let mut fields = s.split(':');
    let kind = fields.next().unwrap_or("");
    let mut num = |default: u64| -> Result<u64, String> {
        match fields.next() {
            None | Some("") => Ok(default),
            Some(f) => f.parse().map_err(|_| format!("bad --net field {f:?}")),
        }
    };
    let channels = |c: u64| -> usize {
        if c == u64::MAX {
            UNBOUNDED_CHANNELS
        } else {
            c as usize
        }
    };
    let model = match kind {
        "zero" => NetworkModel::zero_cost(),
        "uniform" => {
            let lat = num(200)?;
            let cpb = num(2)?;
            let ch = num(2)?;
            NetworkModel::uniform(
                Link {
                    latency: lat,
                    cost_per_byte: cpb,
                },
                channels(ch),
            )
        }
        "two-level" => {
            let lat = num(400)?;
            let cpb = num(2)?;
            let ppn = num(4)?;
            let ch = num(2)?;
            NetworkModel::two_level(
                ppn as usize,
                Link {
                    latency: lat / 10,
                    cost_per_byte: cpb / 2,
                },
                Link {
                    latency: lat,
                    cost_per_byte: cpb,
                },
                channels(ch),
            )
        }
        other => return Err(format!("unknown --net preset {other:?}")),
    };
    if let Some(extra) = fields.next() {
        return Err(format!("trailing --net field {extra:?}"));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_duration_is_latency_plus_serialization() {
        let l = Link {
            latency: 10,
            cost_per_byte: 3,
        };
        assert_eq!(l.duration(0), 10);
        assert_eq!(l.duration(4), 22);
        assert_eq!(Link::FREE.duration(1000), 0);
    }

    #[test]
    fn two_level_topology_distinguishes_nodes() {
        let intra = Link {
            latency: 5,
            cost_per_byte: 1,
        };
        let inter = Link {
            latency: 50,
            cost_per_byte: 4,
        };
        let t = Topology::TwoLevel {
            procs_per_node: 2,
            intra,
            inter,
        };
        assert_eq!(t.link(0, 1), intra);
        assert_eq!(t.link(2, 3), intra);
        assert_eq!(t.link(1, 2), inter);
        assert_eq!(t.link(0, 3), inter);
    }

    #[test]
    fn matrix_topology_is_per_pair() {
        let mk = |latency| Link {
            latency,
            cost_per_byte: 0,
        };
        let links = (0..9).map(mk).collect::<Vec<_>>();
        let t = Topology::Matrix { n: 3, links };
        assert_eq!(t.link(0, 2).latency, 2);
        assert_eq!(t.link(2, 1).latency, 7);
    }

    #[test]
    fn halo_bytes_from_pairs_is_symmetric() {
        let h = HaloBytes::from_pairs(4, &[(0, 1, 640), (1, 2, 320)]);
        assert_eq!(h.between(0, 1), 640);
        assert_eq!(h.between(1, 0), 640);
        assert_eq!(h.between(1, 2), 320);
        assert_eq!(h.between(0, 2), 0, "non-adjacent pair is free");
        assert_eq!(h.between(3, 0), 0, "isolated domain");
        assert_eq!(h.between(2, 2), 0, "no self-halo");
    }

    #[test]
    fn from_comm_reproduces_the_legacy_delay_arithmetic() {
        let comm = CommModel {
            latency: 7,
            cost_per_object: 2,
        };
        let net = NetworkModel::from_comm(&comm);
        assert_eq!(net.channels, UNBOUNDED_CHANNELS);
        let link = net.topology.link(0, 1);
        for n_objects in [1u32, 3, 100] {
            assert_eq!(link.duration(u64::from(n_objects)), comm.delay(n_objects));
        }
    }

    #[test]
    fn preset_grammar() {
        assert_eq!(parse_preset("zero").unwrap(), NetworkModel::zero_cost());
        let u = parse_preset("uniform").unwrap();
        assert_eq!(
            u.topology,
            Topology::Uniform(Link {
                latency: 200,
                cost_per_byte: 2
            })
        );
        assert_eq!(u.channels, 2);
        let u = parse_preset("uniform:500:0:1").unwrap();
        assert_eq!(
            u.topology,
            Topology::Uniform(Link {
                latency: 500,
                cost_per_byte: 0
            })
        );
        assert_eq!(u.channels, 1);
        let t = parse_preset("two-level:400:2:4:2").unwrap();
        assert_eq!(
            t.topology,
            Topology::TwoLevel {
                procs_per_node: 4,
                intra: Link {
                    latency: 40,
                    cost_per_byte: 1
                },
                inter: Link {
                    latency: 400,
                    cost_per_byte: 2
                },
            }
        );
        assert_eq!(parse_preset("two-level").unwrap(), t, "defaults match");
        assert!(parse_preset("mesh").is_err());
        assert!(parse_preset("uniform:a").is_err());
        assert!(parse_preset("zero:1").is_err());
    }

    #[test]
    #[should_panic(expected = "matrix topology order")]
    fn matrix_order_must_match_cluster() {
        NetworkModel::matrix(2, vec![Link::FREE; 4], 1).validate(3);
    }
}
