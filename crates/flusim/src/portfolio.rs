//! Deterministic portfolio racing over the scheduler strategy lattice.
//!
//! [`race`] simulates one task graph under **every** canonical lattice
//! combination ([`DynamicListStrategy::lattice`], 24 combos) and returns a
//! ranked [`Leaderboard`]. Combos are independent experiments, so they fan
//! out over the fork-join pool exactly like `tempart-core`'s `run_sweep`:
//! each combo simulates against its *own* isolated recorder into a disjoint
//! slot, and the driver absorbs the per-combo traces into the parent
//! recorder **in fixed combo order** — the merged stream and the returned
//! leaderboard are pure functions of `(graph, cluster, process_of)`,
//! bit-identical at every worker count.
//!
//! Obs vocabulary (virtual clock): a `"portfolio.race"` span, one
//! `"portfolio.combo"` counter per combo (track = combo index, value =
//! makespan) and a closing `"portfolio.winner"` counter (track = winning
//! combo index, value = its makespan).

use crate::cluster::ClusterConfig;
use crate::lattice::DynamicListStrategy;
use crate::network::NetworkModel;
use crate::sim::{simulate_lattice_traced, simulate_lattice_with_network_traced};
use std::sync::Mutex;
use tempart_obs::{Clock, Recorder, Trace};
use tempart_runtime::fork_join;
use tempart_taskgraph::TaskGraph;

/// Per-combo event capacity of the isolated racing recorders: one
/// `flusim.task` per task plus the run span and closing counters, with the
/// same 8×n headroom the trace tests use — plus room for one `net.xfer`
/// per dependency edge and the `net.*` counters when a network model races.
/// Overflow is never silent — dropped counts are carried into the parent by
/// [`Recorder::absorb`].
fn combo_capacity(graph: &TaskGraph) -> usize {
    8 * graph.len() + 2 * graph.n_edges() + 64
}

/// Summary of one lattice combination's simulated schedule.
///
/// Gantt segments are deliberately *not* retained (24 combos × n tasks
/// would dwarf the statistics); re-simulate the combo with
/// [`crate::simulate_lattice`] to inspect its schedule — the simulator is
/// deterministic, so the replayed schedule is the raced one.
#[derive(Debug, Clone, PartialEq)]
pub struct ComboOutcome {
    /// The lattice point that produced this schedule.
    pub strategy: DynamicListStrategy,
    /// Index in the fixed lattice enumeration order (ranking tie-break).
    pub combo: u32,
    /// Completion time of the last task, in cost units.
    pub makespan: u64,
    /// Fraction of total core-time spent idle; `None` for unbounded
    /// clusters, where capacity is undefined.
    pub idle_fraction: Option<f64>,
    /// Per-process fraction of the makespan during which the composite
    /// process resource was inactive (the paper's Fig. 6 reading).
    pub inactivity: Vec<f64>,
    /// Σ executed task cost (invariant across combos: always the DAG's
    /// total cost).
    pub total_busy: u64,
}

/// Ranked outcome of a portfolio race: best makespan first, lattice
/// enumeration order among equals.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// All raced combos, best first.
    pub entries: Vec<ComboOutcome>,
}

impl Leaderboard {
    /// The best combo (rank 0). Every race covers the full non-empty
    /// lattice, so a winner always exists.
    pub fn winner(&self) -> &ComboOutcome {
        &self.entries[0]
    }

    /// The ranked entry for a given lattice point, if it was raced.
    pub fn entry(&self, strategy: &DynamicListStrategy) -> Option<&ComboOutcome> {
        self.entries.iter().find(|e| e.strategy == *strategy)
    }

    /// FNV-1a digest of the full ranking: for every entry in rank order,
    /// the combo index, makespan, idle-fraction bits (`u64::MAX` when
    /// undefined), total busy and every per-process inactivity's exact f64
    /// bits. Any reordering, makespan drift or f64 formula change alters
    /// the digest — this is what the golden leaderboard test and the CI
    /// worker-matrix gate pin.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for e in &self.entries {
            mix(u64::from(e.combo));
            mix(e.makespan);
            mix(e.idle_fraction.map_or(u64::MAX, f64::to_bits));
            mix(e.total_busy);
            for &i in &e.inactivity {
                mix(i.to_bits());
            }
        }
        h
    }
}

/// Races the full canonical lattice on `workers` fork-join workers and
/// returns the ranked leaderboard. Convenience wrapper over
/// [`race_traced`] without tracing.
pub fn race(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    workers: usize,
) -> Leaderboard {
    race_traced(graph, cluster, process_of, workers, Recorder::off())
}

/// Traced portfolio race with stable sequence re-keying.
///
/// Each combo simulates against an isolated recorder; after the fork-join
/// scope drains, the driver absorbs every combo's trace into `rec` in
/// lattice enumeration order and emits the `portfolio.*` summary counters.
/// Outcomes land in disjoint per-combo slots, so the leaderboard — down to
/// the f64 bits of every ratio — is independent of worker count and steal
/// order.
pub fn race_traced(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    workers: usize,
    rec: &Recorder,
) -> Leaderboard {
    race_inner(graph, cluster, process_of, None, workers, rec)
}

/// [`race`] under a [`NetworkModel`]: every combo is simulated with
/// communication priced, so the leaderboard ranks the lattice in a
/// comm-bound regime. Same determinism contract as [`race`].
pub fn race_network(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    net: &NetworkModel,
    workers: usize,
) -> Leaderboard {
    race_network_traced(graph, cluster, process_of, net, workers, Recorder::off())
}

/// Traced [`race_network`] (see [`race_traced`] for the absorb contract).
pub fn race_network_traced(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    net: &NetworkModel,
    workers: usize,
    rec: &Recorder,
) -> Leaderboard {
    race_inner(graph, cluster, process_of, Some(net), workers, rec)
}

fn race_inner(
    graph: &TaskGraph,
    cluster: &ClusterConfig,
    process_of: &[usize],
    net: Option<&NetworkModel>,
    workers: usize,
    rec: &Recorder,
) -> Leaderboard {
    let combos = DynamicListStrategy::lattice();
    let _span = rec.span("portfolio.race", 0, combos.len() as u64);
    let tracing = rec.enabled();
    let slots: Vec<Mutex<Option<(ComboOutcome, Trace)>>> =
        combos.iter().map(|_| Mutex::new(None)).collect();
    {
        let slots = &slots;
        let combos = &combos;
        fork_join(workers, move |ctx| {
            for (i, strategy) in combos.iter().enumerate() {
                ctx.spawn(move |_| {
                    let combo_rec = if tracing {
                        Recorder::new(combo_capacity(graph))
                    } else {
                        Recorder::off().clone()
                    };
                    let sim = match net {
                        Some(model) => simulate_lattice_with_network_traced(
                            graph, cluster, process_of, strategy, model, &combo_rec,
                        ),
                        None => simulate_lattice_traced(
                            graph, cluster, process_of, strategy, &combo_rec,
                        ),
                    };
                    let outcome = ComboOutcome {
                        strategy: *strategy,
                        combo: i as u32,
                        makespan: sim.makespan,
                        idle_fraction: cluster.total_cores().map(|_| sim.idle_fraction(cluster)),
                        inactivity: sim.process_inactivity(),
                        total_busy: sim.total_executed(),
                    };
                    let trace = combo_rec.take();
                    *slots[i].lock().expect("portfolio slot poisoned") = Some((outcome, trace));
                });
            }
        });
    }
    let mut entries = Vec::with_capacity(combos.len());
    for slot in slots {
        let (outcome, trace) = slot
            .into_inner()
            .expect("portfolio slot poisoned")
            .expect("portfolio combo did not run");
        rec.absorb(&trace);
        if rec.enabled() {
            rec.counter_at(
                Clock::Virtual,
                "portfolio.combo",
                outcome.combo,
                0,
                outcome.makespan,
            );
        }
        entries.push(outcome);
    }
    // Rank: best makespan first; lattice enumeration order among equals.
    // Stable keys (makespan, combo) make the full ordering deterministic.
    entries.sort_by_key(|e| (e.makespan, e.combo));
    let board = Leaderboard { entries };
    if rec.enabled() {
        let w = board.winner();
        rec.counter_at(Clock::Virtual, "portfolio.winner", w.combo, 0, w.makespan);
    }
    board
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Strategy;
    use tempart_taskgraph::{Task, TaskId, TaskKind};

    fn mk_task(domain: u32, cost: u64) -> Task {
        Task {
            subiter: 0,
            tau: 0,
            stage: 0,
            domain,
            kind: TaskKind::CellInternal,
            n_objects: cost as u32,
            cost,
        }
    }

    fn diamond() -> TaskGraph {
        // 0 → {1, 2} → 3 across two domains.
        let tasks = vec![mk_task(0, 4), mk_task(0, 3), mk_task(1, 5), mk_task(1, 2)];
        let preds: Vec<Vec<TaskId>> = vec![vec![], vec![0], vec![0], vec![1, 2]];
        TaskGraph::assemble(tasks, preds, 2, 1)
    }

    #[test]
    fn race_covers_the_lattice_and_ranks_by_makespan() {
        let g = diamond();
        let cluster = ClusterConfig::new(2, 1);
        let board = race(&g, &cluster, &[0, 1], 1);
        assert_eq!(board.entries.len(), 24);
        for pair in board.entries.windows(2) {
            assert!(
                (pair[0].makespan, pair[0].combo) < (pair[1].makespan, pair[1].combo),
                "leaderboard must be strictly ordered by (makespan, combo)"
            );
        }
        for e in &board.entries {
            assert_eq!(e.total_busy, g.total_cost(), "{}", e.strategy.label());
            assert_eq!(e.inactivity.len(), 2);
        }
        // Every legacy strategy is a raced point, so the winner can never
        // lose to any of them.
        for legacy in [
            Strategy::EagerFifo,
            Strategy::EagerLifo,
            Strategy::CriticalPathFirst,
            Strategy::SmallestFirst,
        ] {
            let e = board
                .entry(&DynamicListStrategy::from(legacy))
                .expect("legacy point raced");
            assert!(board.winner().makespan <= e.makespan);
        }
    }

    #[test]
    fn leaderboard_is_worker_count_invariant() {
        let g = diamond();
        let cluster = ClusterConfig::new(2, 2);
        let reference = race(&g, &cluster, &[0, 1], 1);
        for workers in [2usize, 4] {
            let board = race(&g, &cluster, &[0, 1], workers);
            assert_eq!(board, reference, "workers={workers}");
            assert_eq!(board.fingerprint(), reference.fingerprint());
        }
    }

    #[test]
    fn network_race_prices_comm_and_stays_worker_invariant() {
        use crate::network::{Link, NetworkModel};
        let g = diamond();
        let cluster = ClusterConfig::new(2, 1);
        let net = NetworkModel::uniform(
            Link {
                latency: 50,
                cost_per_byte: 1,
            },
            1,
        );
        let free = race(&g, &cluster, &[0, 1], 1);
        let priced = race_network(&g, &cluster, &[0, 1], &net, 1);
        assert_eq!(priced.entries.len(), 24);
        assert!(
            priced.winner().makespan > free.winner().makespan,
            "the diamond's cross-domain edges must cost something"
        );
        for workers in [2usize, 4] {
            let board = race_network(&g, &cluster, &[0, 1], &net, workers);
            assert_eq!(board, priced, "workers={workers}");
            assert_eq!(board.fingerprint(), priced.fingerprint());
        }
    }

    #[test]
    fn empty_task_graph_races_to_an_all_zero_leaderboard() {
        let g = TaskGraph::assemble(vec![], vec![], 1, 1);
        let board = race(&g, &ClusterConfig::new(2, 1), &[0], 1);
        assert_eq!(board.entries.len(), 24);
        for (rank, e) in board.entries.iter().enumerate() {
            assert_eq!(e.makespan, 0);
            assert_eq!(e.total_busy, 0);
            assert_eq!(
                e.combo, rank as u32,
                "all-tie ranking falls back to lattice order"
            );
        }
        assert_eq!(board.winner().combo, 0);
    }

    #[test]
    fn traced_race_emits_combo_and_winner_counters() {
        let g = diamond();
        let cluster = ClusterConfig::new(2, 1);
        let rec = Recorder::new(1 << 14);
        let board = race_traced(&g, &cluster, &[0, 1], 1, &rec);
        let trace = rec.take();
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.named("portfolio.combo").count(), 24);
        // One flusim run span per combo, absorbed in combo order.
        assert_eq!(trace.named("flusim.run").count(), 2 * 24);
        let winner: Vec<_> = trace.named("portfolio.winner").collect();
        assert_eq!(winner.len(), 1);
        assert_eq!(winner[0].track, board.winner().combo);
        assert_eq!(winner[0].val, board.winner().makespan);
        // Untraced race must agree exactly.
        let plain = race(&g, &cluster, &[0, 1], 1);
        assert_eq!(plain, board, "tracing changed the leaderboard");
    }
}
