#![warn(missing_docs)]
//! FLUSIM: an idealized discrete-event simulator for task-distributed
//! executions.
//!
//! Reimplementation of the paper's FLUSIM submodule (Section III-A): given a
//! cluster configuration (processes × cores), a domain→process mapping and a
//! scheduling strategy, it replays a task DAG with list scheduling and
//! reports makespan, per-process activity and a Gantt trace. By default no
//! communication or runtime overheads are modelled — deliberately, so that
//! any remaining idleness is attributable to the *shape of the task graph*
//! alone. The [`network`] module lifts that idealisation: a deterministic
//! per-process-pair latency/bandwidth model prices the halo edge cut as
//! first-class NIC transfers that overlap with compute.

pub mod cluster;
pub mod lattice;
pub mod network;
pub mod portfolio;
pub mod sim;
pub mod svg;
pub mod trace;

pub use cluster::{ClusterConfig, UNBOUNDED_CORES};
pub use lattice::{DynamicListStrategy, ProcessCriterion, TaskCriterion, TieBreak};
pub use network::{
    parse_preset, HaloBytes, Link, MessageSizes, NetworkModel, Topology, TransferSegment,
    UNBOUNDED_CHANNELS,
};
pub use portfolio::{
    race, race_network, race_network_traced, race_traced, ComboOutcome, Leaderboard,
};
pub use sim::{
    simulate, simulate_heterogeneous, simulate_heterogeneous_traced, simulate_lattice,
    simulate_lattice_heterogeneous_traced, simulate_lattice_traced, simulate_lattice_with_comm,
    simulate_lattice_with_network, simulate_lattice_with_network_traced,
    simulate_network_heterogeneous_traced, simulate_traced, simulate_with_comm, CommModel,
    SimResult, Strategy,
};
pub use svg::{gantt_svg, write_gantt_svg, SvgOptions};
pub use tempart_obs::replay::NetStats;
pub use trace::{ascii_gantt, bin_occupancy, segments_csv, Segment};
