//! SVG Gantt rendering — the paper's figures (5, 6, 9, 12, 13) are Gantt
//! charts colour-coded by subiteration; this module reproduces them as
//! standalone SVG files with no external dependencies.

use crate::trace::Segment;
use std::fmt::Write as _;
use tempart_taskgraph::TaskGraph;

/// Visual options for [`gantt_svg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgOptions {
    /// Total plot width in pixels (time axis).
    pub width: f64,
    /// Height of one process row in pixels.
    pub row_height: f64,
    /// Gap between rows in pixels.
    pub row_gap: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 960.0,
            row_height: 14.0,
            row_gap: 3.0,
        }
    }
}

/// A categorical palette for subiterations (cycled when there are more
/// subiterations than entries) — chosen to echo the paper's traces.
const PALETTE: [&str; 8] = [
    "#d62728", // red      (subiteration 0: the heavy one)
    "#1f77b4", // blue
    "#2ca02c", // green
    "#ff7f0e", // orange
    "#9467bd", // purple
    "#8c564b", // brown
    "#17becf", // cyan
    "#bcbd22", // olive
];

/// Renders the execution trace as an SVG Gantt chart: one row per process,
/// one rectangle per task, colour-coded by subiteration — the same encoding
/// as the paper's figures.
pub fn gantt_svg(
    graph: &TaskGraph,
    segments: &[Segment],
    n_processes: usize,
    makespan: u64,
    title: &str,
    options: &SvgOptions,
) -> String {
    let o = options;
    let label_w = 46.0;
    let title_h = 22.0;
    let height = title_h + n_processes as f64 * (o.row_height + o.row_gap) + 24.0;
    let total_w = label_w + o.width + 8.0;
    let scale = if makespan == 0 {
        0.0
    } else {
        o.width / makespan as f64
    };

    let mut svg = String::with_capacity(segments.len() * 90 + 1024);
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{total_w:.0}" height="{height:.0}" viewBox="0 0 {total_w:.0} {height:.0}">"#
    );
    let _ = write!(
        svg,
        r##"<rect width="100%" height="100%" fill="white"/><text x="4" y="15" font-family="sans-serif" font-size="13" fill="#222">{}</text>"##,
        xml_escape(title)
    );
    // Row backgrounds and labels.
    for p in 0..n_processes {
        let y = title_h + p as f64 * (o.row_height + o.row_gap);
        let _ = write!(
            svg,
            r##"<rect x="{label_w}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="#f2f2f2"/><text x="4" y="{:.1}" font-family="monospace" font-size="10" fill="#555">P{p}</text>"##,
            o.width,
            o.row_height,
            y + o.row_height - 3.0,
        );
    }
    // Task rectangles.
    for s in segments {
        let task = graph.task(s.task);
        let color = PALETTE[task.subiter as usize % PALETTE.len()];
        let x = label_w + s.start as f64 * scale;
        let w = ((s.end - s.start) as f64 * scale).max(0.3);
        let y = title_h + s.process as f64 * (o.row_height + o.row_gap);
        let _ = write!(
            svg,
            r#"<rect x="{x:.2}" y="{y:.1}" width="{w:.2}" height="{:.1}" fill="{color}"/>"#,
            o.row_height
        );
    }
    // Time axis caption.
    let _ = write!(
        svg,
        r##"<text x="{label_w}" y="{:.1}" font-family="sans-serif" font-size="10" fill="#555">0</text><text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" fill="#555" text-anchor="end">makespan = {makespan}</text>"##,
        height - 8.0,
        label_w + o.width,
        height - 8.0,
    );
    svg.push_str("</svg>");
    svg
}

/// Writes [`gantt_svg`] output to a file.
pub fn write_gantt_svg(
    graph: &TaskGraph,
    segments: &[Segment],
    n_processes: usize,
    makespan: u64,
    title: &str,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(
        path,
        gantt_svg(
            graph,
            segments,
            n_processes,
            makespan,
            title,
            &SvgOptions::default(),
        ),
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempart_taskgraph::{Task, TaskKind};

    fn tiny() -> (TaskGraph, Vec<Segment>) {
        let mk = |subiter: u32, cost: u64| Task {
            subiter,
            tau: 0,
            stage: 0,
            domain: 0,
            kind: TaskKind::CellInternal,
            n_objects: 1,
            cost,
        };
        let g = TaskGraph::assemble(vec![mk(0, 4), mk(1, 4)], vec![vec![], vec![0]], 1, 2);
        let segs = vec![
            Segment {
                task: 0,
                process: 0,
                start: 0,
                end: 4,
            },
            Segment {
                task: 1,
                process: 0,
                start: 4,
                end: 8,
            },
        ];
        (g, segs)
    }

    #[test]
    fn svg_structure() {
        let (g, segs) = tiny();
        let svg = gantt_svg(&g, &segs, 2, 8, "test <trace>", &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("test &lt;trace&gt;"), "title escaped");
        // Two task rects with distinct subiteration colours.
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
        assert!(svg.contains(">P0<") && svg.contains(">P1<"));
        assert!(svg.contains("makespan = 8"));
    }

    #[test]
    fn empty_trace_is_valid_svg() {
        let (g, _) = tiny();
        let svg = gantt_svg(&g, &[], 1, 0, "empty", &SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }

    #[test]
    fn file_roundtrip() {
        let (g, segs) = tiny();
        let dir = std::env::temp_dir().join("tempart_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.svg");
        write_gantt_svg(&g, &segs, 1, 8, "t", &path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
        std::fs::remove_file(&path).ok();
    }
}
