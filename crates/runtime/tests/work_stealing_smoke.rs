//! Smoke tests for the std work-stealing `Group` fabric under contention:
//! many simultaneously-ready tasks hammered by 1 and 4 workers per group,
//! asserting every task executes exactly once.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use tempart_runtime::{execute, RuntimeConfig};
use tempart_taskgraph::{Task, TaskGraph, TaskId, TaskKind};

fn mk_task(domain: u32) -> Task {
    Task {
        subiter: 0,
        tau: 0,
        stage: 0,
        domain,
        kind: TaskKind::CellInternal,
        n_objects: 1,
        cost: 1,
    }
}

/// A wide DAG designed to maximise scheduler contention: `roots` independent
/// root tasks (all ready at t=0) each fanning into `succ_per_root`
/// successors, spread round-robin over `domains` domains.
fn contention_graph(roots: usize, succ_per_root: usize, domains: u32) -> TaskGraph {
    let mut tasks = Vec::new();
    let mut preds: Vec<Vec<TaskId>> = Vec::new();
    for r in 0..roots {
        tasks.push(mk_task((r as u32) % domains));
        preds.push(vec![]);
    }
    for r in 0..roots {
        for s in 0..succ_per_root {
            tasks.push(mk_task(((r + s) as u32) % domains));
            preds.push(vec![r as TaskId]);
        }
    }
    TaskGraph::assemble(tasks, preds, domains as usize, 1)
}

fn assert_exactly_once(workers_per_group: usize, n_groups: usize) {
    let domains = (n_groups * 2) as u32;
    let graph = contention_graph(512, 4, domains);
    let group_of: Vec<usize> = (0..domains as usize).map(|d| d % n_groups).collect();
    let counts: Vec<AtomicU32> = (0..graph.len()).map(|_| AtomicU32::new(0)).collect();
    let concurrent = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);

    let cfg = RuntimeConfig {
        n_groups,
        workers_per_group,
        record_trace: false,
    };
    let report = execute(&graph, &cfg, &group_of, |t, _| {
        let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(now, Ordering::SeqCst);
        counts[t as usize].fetch_add(1, Ordering::SeqCst);
        // A tiny busy-wait widens the race window so double-execution bugs
        // would actually show up.
        std::hint::black_box((0..50u64).sum::<u64>());
        concurrent.fetch_sub(1, Ordering::SeqCst);
    });

    assert_eq!(report.executed, graph.len(), "all tasks executed");
    for (t, c) in counts.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::SeqCst),
            1,
            "task {t} must execute exactly once"
        );
    }
    let max_workers = n_groups * workers_per_group;
    assert!(
        peak.load(Ordering::SeqCst) <= max_workers,
        "concurrency {} exceeded worker count {max_workers}",
        peak.load(Ordering::SeqCst)
    );
}

#[test]
fn single_worker_per_group_executes_exactly_once() {
    assert_exactly_once(1, 2);
}

#[test]
fn four_workers_per_group_execute_exactly_once() {
    assert_exactly_once(4, 2);
}

#[test]
fn four_workers_single_group_all_stealing() {
    // One group, one domain: every ready task funnels through one injector
    // and four thieves — the worst-case contention pattern.
    assert_exactly_once(4, 1);
}

#[test]
fn repeated_runs_are_stable() {
    // Exercise startup/shutdown races: many short runs back to back.
    for _ in 0..20 {
        assert_exactly_once(4, 2);
    }
}
