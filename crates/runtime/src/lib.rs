#![warn(missing_docs)]
//! A StarPU-like threaded task runtime with MPI-like process groups.
//!
//! The paper's FLUSEPA delegates task scheduling to StarPU within each MPI
//! process; tasks never migrate between processes (their domain is pinned to
//! a rank). This crate reproduces that execution model in shared memory:
//! worker threads are partitioned into *groups*; each group owns the tasks of
//! the domains mapped to it; workers steal within their group but **never**
//! across groups. That boundary is what makes per-subiteration load imbalance
//! show up as idle cores, exactly as in the distributed setting.

pub mod dag_exec;
pub mod forkjoin;
pub mod groups;
pub mod trace;

pub use dag_exec::{execute, execute_traced, ExecReport, RuntimeConfig};
pub use forkjoin::{env_workers, fork_join, ForkCtx};
pub use groups::TaskSource;
pub use trace::{wall_segments, WallSegment};
