//! Process-group structure: per-group injectors and in-group stealing.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use tempart_taskgraph::TaskId;

/// The scheduling fabric of one process group: a shared injector plus one
/// work-stealing deque per worker thread of the group.
pub struct Group {
    /// Global inbox of the group; newly-ready tasks land here.
    pub injector: Injector<TaskId>,
    /// Stealers for all worker deques of this group.
    pub stealers: Vec<Stealer<TaskId>>,
}

impl Group {
    /// Creates the group fabric, returning the group and the worker-local
    /// deques (to be moved into the worker threads).
    pub fn new(n_workers: usize) -> (Self, Vec<Worker<TaskId>>) {
        let workers: Vec<Worker<TaskId>> = (0..n_workers).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        (
            Self {
                injector: Injector::new(),
                stealers,
            },
            workers,
        )
    }

    /// Finds work for the worker owning `local`: local deque first, then the
    /// group injector, then stealing from in-group siblings.
    pub fn find_task(&self, local: &Worker<TaskId>, self_index: usize) -> Option<TaskId> {
        if let Some(t) = local.pop() {
            return Some(t);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        for (i, s) in self.stealers.iter().enumerate() {
            if i == self_index {
                continue;
            }
            loop {
                match s.steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_roundtrip() {
        let (g, workers) = Group::new(2);
        g.injector.push(7);
        g.injector.push(8);
        let t = g.find_task(&workers[0], 0).unwrap();
        assert!(t == 7 || t == 8);
        // The batch-steal may have moved the second task into worker 0's
        // local deque; worker 1 must still find it via stealing.
        let t2 = g.find_task(&workers[1], 1).unwrap();
        assert_ne!(t, t2);
        assert!(g.find_task(&workers[1], 1).is_none());
    }

    #[test]
    fn local_first() {
        let (g, workers) = Group::new(1);
        workers[0].push(1);
        g.injector.push(2);
        assert_eq!(g.find_task(&workers[0], 0), Some(1));
        assert_eq!(g.find_task(&workers[0], 0), Some(2));
        assert_eq!(g.find_task(&workers[0], 0), None);
    }
}
