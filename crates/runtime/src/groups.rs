//! Process-group structure: per-group injectors and in-group stealing.
//!
//! Built on std primitives only (`Mutex<VecDeque>` + `Arc`), replacing the
//! previous `crossbeam::deque` fabric so the workspace stays dependency-free.
//! The deque types are generic over the queued item (defaulting to
//! [`TaskId`]): the DAG executor queues task ids, the fork-join layer
//! ([`crate::forkjoin`]) queues boxed closures — one fabric, two runtimes.
//! The scheduling semantics are preserved exactly:
//!
//! * **Owner pop is LIFO** — a worker pops the task it most recently pushed
//!   (its just-released successor), keeping the hot cache lines hot;
//! * **Stealing is FIFO** — thieves take the *oldest* task from a victim's
//!   deque, which tends to be the root of the largest untouched subtree;
//! * **The injector is FIFO** — newly-ready cross-group tasks are consumed
//!   in arrival order.
//!
//! Under the task granularities this runtime executes (finite-volume cell
//! blocks, ≥ tens of microseconds each) a per-deque mutex is not a
//! measurable bottleneck: each task acquires O(1) uncontended locks, and
//! contention only appears when workers are starving anyway.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use tempart_taskgraph::TaskId;

/// The shared FIFO inbox of a group; newly-ready tasks land here when the
/// releasing worker belongs to a different group.
#[derive(Debug)]
pub struct Injector<T = TaskId> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a ready task (FIFO order).
    pub fn push(&self, t: T) {
        self.queue.lock().expect("injector poisoned").push_back(t);
    }

    /// Dequeues the oldest task, if any.
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().expect("injector poisoned").pop_front()
    }

    /// Number of queued tasks (diagnostics only; racy by nature).
    pub fn len(&self) -> usize {
        self.queue.lock().expect("injector poisoned").len()
    }

    /// Whether the injector is empty (diagnostics only; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The owner-side handle of one worker's deque. Moves into the worker
/// thread; the matching [`Stealer`]s stay in the [`Group`].
#[derive(Debug)]
pub struct Worker<T = TaskId> {
    deque: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Worker<T> {
    fn clone(&self) -> Self {
        Self {
            deque: Arc::clone(&self.deque),
        }
    }
}

impl<T> Worker<T> {
    pub(crate) fn new() -> Self {
        Self {
            deque: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the owner's end (most-recently-pushed pops first).
    pub fn push(&self, t: T) {
        self.deque.lock().expect("deque poisoned").push_back(t);
    }

    /// Pops the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.deque.lock().expect("deque poisoned").pop_back()
    }

    /// The thief-side handle of this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            deque: Arc::clone(&self.deque),
        }
    }
}

/// The thief-side handle of a worker's deque: takes the *oldest* task.
#[derive(Debug)]
pub struct Stealer<T = TaskId> {
    deque: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            deque: Arc::clone(&self.deque),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the victim's deque (FIFO).
    pub fn steal(&self) -> Option<T> {
        self.deque.lock().expect("deque poisoned").pop_front()
    }
}

/// Where a worker's [`Group::find_task_tagged`] call found its task. Fed
/// into the runtime's `rt.local` / `rt.inject` / `rt.steal` counters so a
/// trace shows how much of the schedule flowed through each path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSource {
    /// Popped from the worker's own deque (LIFO).
    Local,
    /// Taken from the group's shared injector (FIFO).
    Inject,
    /// Stolen from an in-group sibling's deque (FIFO).
    Steal,
}

/// The scheduling fabric of one process group: a shared injector plus one
/// work-stealing deque per worker thread of the group.
pub struct Group<T = TaskId> {
    /// Global inbox of the group; newly-ready tasks land here.
    pub injector: Injector<T>,
    /// Stealers for all worker deques of this group.
    pub stealers: Vec<Stealer<T>>,
}

impl<T> Group<T> {
    /// Creates the group fabric, returning the group and the worker-local
    /// deques (to be moved into the worker threads).
    pub fn new(n_workers: usize) -> (Self, Vec<Worker<T>>) {
        let workers: Vec<Worker<T>> = (0..n_workers).map(|_| Worker::new()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        (
            Self {
                injector: Injector::new(),
                stealers,
            },
            workers,
        )
    }

    /// Finds work for the worker owning `local`: local deque first (LIFO),
    /// then the group injector (FIFO), then stealing from in-group siblings
    /// (FIFO from each victim).
    pub fn find_task(&self, local: &Worker<T>, self_index: usize) -> Option<T> {
        self.find_task_tagged(local, self_index).map(|(t, _)| t)
    }

    /// Like [`Group::find_task`], additionally reporting which path produced
    /// the task. The probe order (and thus the schedule) is identical.
    pub fn find_task_tagged(
        &self,
        local: &Worker<T>,
        self_index: usize,
    ) -> Option<(T, TaskSource)> {
        if let Some(t) = local.pop() {
            return Some((t, TaskSource::Local));
        }
        if let Some(t) = self.injector.pop() {
            return Some((t, TaskSource::Inject));
        }
        for (i, s) in self.stealers.iter().enumerate() {
            if i == self_index {
                continue;
            }
            if let Some(t) = s.steal() {
                return Some((t, TaskSource::Steal));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_roundtrip() {
        let (g, workers) = Group::new(2);
        g.injector.push(7);
        g.injector.push(8);
        let t = g.find_task(&workers[0], 0).unwrap();
        assert_eq!(t, 7, "injector is FIFO");
        let t2 = g.find_task(&workers[1], 1).unwrap();
        assert_eq!(t2, 8);
        assert!(g.find_task(&workers[1], 1).is_none());
    }

    #[test]
    fn local_first() {
        let (g, workers) = Group::new(1);
        workers[0].push(1);
        g.injector.push(2);
        assert_eq!(g.find_task(&workers[0], 0), Some(1));
        assert_eq!(g.find_task(&workers[0], 0), Some(2));
        assert_eq!(g.find_task(&workers[0], 0), None);
    }

    #[test]
    fn owner_pops_lifo() {
        let (_, workers) = Group::new(1);
        let w = &workers[0];
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn thief_steals_fifo() {
        let (g, workers) = Group::new(2);
        workers[0].push(1);
        workers[0].push(2);
        workers[0].push(3);
        // Worker 1 has nothing local and the injector is empty: it must
        // steal the *oldest* task of worker 0.
        assert_eq!(g.find_task(&workers[1], 1), Some(1));
        // Owner still pops its newest first.
        assert_eq!(workers[0].pop(), Some(3));
        assert_eq!(g.find_task(&workers[1], 1), Some(2));
    }

    #[test]
    fn tagged_sources_match_probe_order() {
        let (g, workers) = Group::new(2);
        workers[0].push(1);
        g.injector.push(2);
        workers[1].push(3);
        assert_eq!(
            g.find_task_tagged(&workers[0], 0),
            Some((1, TaskSource::Local))
        );
        assert_eq!(
            g.find_task_tagged(&workers[0], 0),
            Some((2, TaskSource::Inject))
        );
        assert_eq!(
            g.find_task_tagged(&workers[0], 0),
            Some((3, TaskSource::Steal))
        );
        assert_eq!(g.find_task_tagged(&workers[0], 0), None);
    }

    #[test]
    fn steal_skips_self_and_visits_all_victims() {
        let (g, workers) = Group::new(3);
        workers[2].push(42);
        // Worker 1 must reach worker 2's deque even with worker 0 empty.
        assert_eq!(g.find_task(&workers[1], 1), Some(42));
        assert!(g.find_task(&workers[1], 1).is_none());
    }
}
