//! Wall-clock execution traces.
//!
//! Since the unified observability layer landed, [`WallSegment`]s are a
//! *derived view* over the structured event stream: the runtime emits one
//! `"rt.task"` [`Complete`](Kind::Complete) event per executed task and
//! [`wall_segments`] reconstructs the Gantt segments from those events.

use tempart_obs::{Event, Kind};
use tempart_taskgraph::TaskId;

/// One task execution with wall-clock timestamps (nanoseconds from the start
/// of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallSegment {
    /// The executed task.
    pub task: TaskId,
    /// Group (emulated MPI process) the worker belonged to.
    pub group: u32,
    /// Worker index within the group.
    pub worker: u32,
    /// Start, ns from run start.
    pub start_ns: u64,
    /// End, ns from run start.
    pub end_ns: u64,
}

impl WallSegment {
    /// Execution duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Rebuilds [`WallSegment`]s from a unified obs event stream — the thin-view
/// inverse of the runtime's `"rt.task"` `Complete` events.
///
/// `t0_ns` is the recorder-clock timestamp of the run start (the runtime
/// stamps task events on the recorder's timeline so they interleave with
/// spans from other layers); segment timestamps are re-based to nanoseconds
/// from run start. Events of any other name, kind or clock are ignored, so
/// the snapshot may come straight from `Recorder::events_since`.
pub fn wall_segments(events: &[Event], t0_ns: u64) -> Vec<WallSegment> {
    let mut segs: Vec<WallSegment> = events
        .iter()
        .filter(|e| e.kind == Kind::Complete && e.name == "rt.task")
        .map(|e| WallSegment {
            task: e.a as TaskId,
            group: (e.b >> 32) as u32,
            worker: (e.b & 0xffff_ffff) as u32,
            start_ns: e.t.saturating_sub(t0_ns),
            end_ns: e.end().saturating_sub(t0_ns),
        })
        .collect();
    segs.sort_unstable_by_key(|s| (s.start_ns, s.task));
    segs
}

/// Computes per-group busy nanoseconds from a trace.
pub fn group_busy_ns(segments: &[WallSegment], n_groups: usize) -> Vec<u64> {
    let mut busy = vec![0u64; n_groups];
    for s in segments {
        busy[s.group as usize] += s.duration_ns();
    }
    busy
}

/// Length of the union of a group's active intervals, in nanoseconds: the
/// composite-resource activity used to spot whole-process idleness.
pub fn group_active_ns(segments: &[WallSegment], group: u32) -> u64 {
    let mut spans: Vec<(u64, u64)> = segments
        .iter()
        .filter(|s| s.group == group)
        .map(|s| (s.start_ns, s.end_ns))
        .collect();
    spans.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in spans {
        match cur {
            None => cur = Some((a, b)),
            Some((ca, cb)) => {
                if a <= cb {
                    cur = Some((ca, cb.max(b)));
                } else {
                    total += cb - ca;
                    cur = Some((a, b));
                }
            }
        }
    }
    if let Some((a, b)) = cur {
        total += b - a;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(group: u32, start: u64, end: u64) -> WallSegment {
        WallSegment {
            task: 0,
            group,
            worker: 0,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn busy_sums_durations() {
        let segs = vec![seg(0, 0, 10), seg(0, 5, 15), seg(1, 0, 3)];
        assert_eq!(group_busy_ns(&segs, 2), vec![20, 3]);
    }

    #[test]
    fn active_merges_overlaps() {
        let segs = vec![seg(0, 0, 10), seg(0, 5, 15), seg(0, 20, 25)];
        assert_eq!(group_active_ns(&segs, 0), 15 + 5);
        assert_eq!(group_active_ns(&segs, 1), 0);
    }

    #[test]
    fn wall_segments_unpacks_and_rebases() {
        use tempart_obs::{Clock, Recorder};
        let rec = Recorder::new(16);
        // group 2 / worker 1, task 7, [1100, 1400) on the recorder clock.
        rec.complete_at(Clock::Wall, "rt.task", 5, 1100, 300, 7, (2u64 << 32) | 1);
        // A foreign event the view must ignore.
        rec.counter_at(Clock::Wall, "rt.exec", 5, 1500, 1);
        let trace = rec.take();
        let segs = wall_segments(&trace.events, 1000);
        assert_eq!(
            segs,
            vec![WallSegment {
                task: 7,
                group: 2,
                worker: 1,
                start_ns: 100,
                end_ns: 400,
            }]
        );
    }
}
