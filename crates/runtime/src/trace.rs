//! Wall-clock execution traces.

use tempart_taskgraph::TaskId;

/// One task execution with wall-clock timestamps (nanoseconds from the start
/// of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallSegment {
    /// The executed task.
    pub task: TaskId,
    /// Group (emulated MPI process) the worker belonged to.
    pub group: u32,
    /// Worker index within the group.
    pub worker: u32,
    /// Start, ns from run start.
    pub start_ns: u64,
    /// End, ns from run start.
    pub end_ns: u64,
}

impl WallSegment {
    /// Execution duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Computes per-group busy nanoseconds from a trace.
pub fn group_busy_ns(segments: &[WallSegment], n_groups: usize) -> Vec<u64> {
    let mut busy = vec![0u64; n_groups];
    for s in segments {
        busy[s.group as usize] += s.duration_ns();
    }
    busy
}

/// Length of the union of a group's active intervals, in nanoseconds: the
/// composite-resource activity used to spot whole-process idleness.
pub fn group_active_ns(segments: &[WallSegment], group: u32) -> u64 {
    let mut spans: Vec<(u64, u64)> = segments
        .iter()
        .filter(|s| s.group == group)
        .map(|s| (s.start_ns, s.end_ns))
        .collect();
    spans.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in spans {
        match cur {
            None => cur = Some((a, b)),
            Some((ca, cb)) => {
                if a <= cb {
                    cur = Some((ca, cb.max(b)));
                } else {
                    total += cb - ca;
                    cur = Some((a, b));
                }
            }
        }
    }
    if let Some((a, b)) = cur {
        total += b - a;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(group: u32, start: u64, end: u64) -> WallSegment {
        WallSegment {
            task: 0,
            group,
            worker: 0,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn busy_sums_durations() {
        let segs = vec![seg(0, 0, 10), seg(0, 5, 15), seg(1, 0, 3)];
        assert_eq!(group_busy_ns(&segs, 2), vec![20, 3]);
    }

    #[test]
    fn active_merges_overlaps() {
        let segs = vec![seg(0, 0, 10), seg(0, 5, 15), seg(0, 20, 25)];
        assert_eq!(group_active_ns(&segs, 0), 15 + 5);
        assert_eq!(group_active_ns(&segs, 1), 0);
    }
}
