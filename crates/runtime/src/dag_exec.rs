//! Dependency-counted DAG execution over grouped worker threads.

use crate::groups::{Group, TaskSource};
use crate::trace::WallSegment;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use tempart_obs::{Clock, Recorder};
use tempart_taskgraph::{TaskGraph, TaskId};

/// Runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of process groups (emulated MPI ranks).
    pub n_groups: usize,
    /// Worker threads per group.
    pub workers_per_group: usize,
    /// Record a wall-clock Gantt trace (small overhead).
    pub record_trace: bool,
}

impl RuntimeConfig {
    /// A tracing configuration with the given geometry.
    pub fn new(n_groups: usize, workers_per_group: usize) -> Self {
        assert!(n_groups >= 1, "need at least one group");
        assert!(workers_per_group >= 1, "need at least one worker per group");
        Self {
            n_groups,
            workers_per_group,
            record_trace: true,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Number of tasks executed (equals the DAG size on success).
    pub executed: usize,
    /// Wall-clock Gantt segments (empty unless `record_trace`).
    pub segments: Vec<WallSegment>,
}

impl ExecReport {
    /// Per-group busy time in nanoseconds.
    pub fn group_busy_ns(&self, n_groups: usize) -> Vec<u64> {
        crate::trace::group_busy_ns(&self.segments, n_groups)
    }
}

/// Executes every task of `graph` exactly once, respecting dependencies.
///
/// Tasks are routed to the group of their domain (`group_of[domain]`);
/// workers steal within their group only. `task_fn(id, task)` is the task
/// body and must be safe to call concurrently for independent tasks.
///
/// # Panics
///
/// Panics on inconsistent configuration, or if the run completes without
/// executing every task (dependency cycle — impossible for graphs assembled
/// by `tempart-taskgraph`).
pub fn execute<F>(
    graph: &TaskGraph,
    config: &RuntimeConfig,
    group_of: &[usize],
    task_fn: F,
) -> ExecReport
where
    F: Fn(TaskId, &tempart_taskgraph::Task) + Sync,
{
    execute_traced(graph, config, group_of, Recorder::off(), task_fn)
}

/// Like [`execute`], recording structured events into `rec`.
///
/// Per executed task one `"rt.task"` [`Clock::Wall`] `Complete` event is
/// emitted (track = global worker id, `a` = task id, `b` = `group << 32 |
/// worker`); per worker the counters `"rt.exec"` / `"rt.local"` /
/// `"rt.inject"` / `"rt.steal"` (tasks by acquisition path, `exec` = their
/// sum) and `"rt.park"` (20 µs sleeps while starved) are emitted once at
/// worker exit, and the whole run is wrapped in an `"rt.run"` span. Task
/// timestamps live on the recorder's clock so they interleave with spans
/// from other layers; [`crate::trace::wall_segments`] re-bases them.
///
/// `ExecReport::segments` is derived from those events — the runtime holds
/// no second trace representation. When `rec` is disabled but
/// `config.record_trace` is set, a private recorder sized for the run is
/// used so the report still carries segments; when `rec` is enabled its
/// buffers must be large enough for the run (one event per task per worker
/// buffer plus a handful of counters) or segments will be incomplete and
/// `Recorder::dropped` non-zero.
pub fn execute_traced<F>(
    graph: &TaskGraph,
    config: &RuntimeConfig,
    group_of: &[usize],
    rec: &Recorder,
    task_fn: F,
) -> ExecReport
where
    F: Fn(TaskId, &tempart_taskgraph::Task) + Sync,
{
    assert_eq!(group_of.len(), graph.n_domains, "one group per domain");
    assert!(
        group_of.iter().all(|&g| g < config.n_groups),
        "group id out of range"
    );
    let n = graph.len();
    if n == 0 {
        return ExecReport {
            wall: Duration::ZERO,
            executed: 0,
            segments: Vec::new(),
        };
    }

    // Recorder selection: an enabled caller recorder wins; otherwise
    // `record_trace` spins up a private one so `segments` keeps working.
    let fallback;
    let rec: &Recorder = if rec.enabled() {
        rec
    } else if config.record_trace {
        fallback = Recorder::new(n + 16);
        &fallback
    } else {
        rec
    };
    let watermark = rec.seq_watermark();

    let pending: Vec<AtomicU32> = (0..n)
        .map(|t| AtomicU32::new(graph.preds(t as TaskId).len() as u32))
        .collect();
    let done = AtomicUsize::new(0);

    // Build the group fabric; worker deques move into threads.
    let mut groups: Vec<Group> = Vec::with_capacity(config.n_groups);
    let mut deques: Vec<Vec<crate::groups::Worker>> = Vec::with_capacity(config.n_groups);
    for _ in 0..config.n_groups {
        let (g, w) = Group::new(config.workers_per_group);
        groups.push(g);
        deques.push(w);
    }
    // Seed roots.
    for t in 0..n as TaskId {
        if graph.preds(t).is_empty() {
            let g = group_of[graph.task(t).domain as usize];
            groups[g].injector.push(t);
        }
    }

    let run_span = rec.span("rt.run", 0, n as u64);
    // Recorder-clock timestamp of the run start: task events are stamped at
    // `wall0 + <ns since t0>` so every layer shares one wall timeline.
    let wall0 = if rec.enabled() { rec.now_ns() } else { 0 };
    let t0 = Instant::now();
    let groups = &groups;
    let pending = &pending;
    let done = &done;
    let task_fn = &task_fn;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (gid, group_deques) in deques.into_iter().enumerate() {
            for (wid, local) in group_deques.into_iter().enumerate() {
                let rec = rec.clone();
                let handle = scope.spawn(move || {
                    let track = (gid * config.workers_per_group + wid) as u32;
                    let lane = ((gid as u64) << 32) | wid as u64;
                    let (mut n_local, mut n_inject, mut n_steal, mut n_park) =
                        (0u64, 0u64, 0u64, 0u64);
                    let mut idle_spins = 0u32;
                    loop {
                        if done.load(Ordering::Acquire) >= n {
                            break;
                        }
                        let Some((t, src)) = groups[gid].find_task_tagged(&local, wid) else {
                            // Nothing available in this group right now.
                            idle_spins += 1;
                            if idle_spins < 64 {
                                std::hint::spin_loop();
                            } else {
                                n_park += 1;
                                std::thread::sleep(Duration::from_micros(20));
                            }
                            continue;
                        };
                        idle_spins = 0;
                        match src {
                            TaskSource::Local => n_local += 1,
                            TaskSource::Inject => n_inject += 1,
                            TaskSource::Steal => n_steal += 1,
                        }
                        let start = t0.elapsed().as_nanos() as u64;
                        task_fn(t, graph.task(t));
                        let end = t0.elapsed().as_nanos() as u64;
                        rec.complete_at(
                            Clock::Wall,
                            "rt.task",
                            track,
                            wall0 + start,
                            end - start,
                            u64::from(t),
                            lane,
                        );
                        // Release successors.
                        for &s in graph.succs(t) {
                            if pending[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                let sg = group_of[graph.task(s).domain as usize];
                                if sg == gid {
                                    local.push(s);
                                } else {
                                    groups[sg].injector.push(s);
                                }
                            }
                        }
                        done.fetch_add(1, Ordering::AcqRel);
                    }
                    if rec.enabled() {
                        rec.counter("rt.exec", track, n_local + n_inject + n_steal);
                        rec.counter("rt.local", track, n_local);
                        rec.counter("rt.inject", track, n_inject);
                        rec.counter("rt.steal", track, n_steal);
                        rec.counter("rt.park", track, n_park);
                    }
                });
                handles.push(handle);
            }
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });

    let executed = done.load(Ordering::Acquire);
    assert_eq!(executed, n, "not every task executed");
    let wall = t0.elapsed();
    drop(run_span);
    let segments = if rec.enabled() {
        crate::trace::wall_segments(&rec.events_since(watermark), wall0)
    } else {
        Vec::new()
    };
    ExecReport {
        wall,
        executed,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use tempart_taskgraph::{Task, TaskKind};

    fn mk_task(domain: u32, cost: u64) -> Task {
        Task {
            subiter: 0,
            tau: 0,
            stage: 0,
            domain,
            kind: TaskKind::CellInternal,
            n_objects: 1,
            cost,
        }
    }

    /// A layered DAG: `layers` layers of `width` tasks; task (l, i) depends
    /// on all of layer l-1.
    fn layered(layers: usize, width: usize, domains: u32) -> TaskGraph {
        let mut tasks = Vec::new();
        let mut preds: Vec<Vec<TaskId>> = Vec::new();
        for l in 0..layers {
            for i in 0..width {
                tasks.push(mk_task((i as u32) % domains, 1));
                if l == 0 {
                    preds.push(vec![]);
                } else {
                    let base = ((l - 1) * width) as TaskId;
                    preds.push((0..width as TaskId).map(|j| base + j).collect());
                }
            }
        }
        TaskGraph::assemble(tasks, preds, domains as usize, 1)
    }

    #[test]
    fn executes_every_task_once() {
        let g = layered(8, 16, 4);
        let counts: Vec<AtomicU32> = (0..g.len()).map(|_| AtomicU32::new(0)).collect();
        let cfg = RuntimeConfig::new(2, 2);
        let group_of = vec![0, 0, 1, 1];
        let report = execute(&g, &cfg, &group_of, |t, _| {
            counts[t as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(report.executed, g.len());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(report.segments.len(), g.len());
    }

    #[test]
    fn dependencies_ordered_by_completion_stamp() {
        let g = layered(6, 8, 2);
        let stamp = AtomicU64::new(0);
        let finished: Vec<AtomicU64> = (0..g.len()).map(|_| AtomicU64::new(0)).collect();
        let cfg = RuntimeConfig::new(1, 4);
        execute(&g, &cfg, &[0, 0], |t, _| {
            finished[t as usize].store(stamp.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
        });
        for t in 0..g.len() as TaskId {
            for &p in g.preds(t) {
                assert!(
                    finished[p as usize].load(Ordering::SeqCst)
                        < finished[t as usize].load(Ordering::SeqCst),
                    "pred {p} must finish before {t}"
                );
            }
        }
    }

    #[test]
    fn group_isolation() {
        // Domain 0 -> group 0, domain 1 -> group 1; tasks must only run on
        // their group's workers.
        let g = layered(4, 8, 2);
        let cfg = RuntimeConfig::new(2, 3);
        let report = execute(&g, &cfg, &[0, 1], |_, _| {});
        for s in &report.segments {
            let dom = g.task(s.task).domain;
            assert_eq!(
                s.group, dom,
                "task of domain {dom} ran on group {}",
                s.group
            );
        }
    }

    #[test]
    fn single_worker_serialises() {
        let g = layered(3, 3, 1);
        let cfg = RuntimeConfig::new(1, 1);
        let report = execute(&g, &cfg, &[0], |_, _| {
            std::thread::sleep(Duration::from_micros(200));
        });
        // Segments must not overlap on a single worker.
        for w in report.segments.windows(2) {
            assert!(w[1].start_ns >= w[0].end_ns);
        }
    }

    #[test]
    fn traced_counters_conserve_task_count() {
        // Source-tagged counters must add up to the DAG size: every task is
        // acquired exactly once, whether popped locally, injected or stolen.
        for workers in [1usize, 4] {
            let g = layered(6, 12, 3);
            let rec = Recorder::new(4 * g.len());
            let cfg = RuntimeConfig::new(1, workers);
            let report = execute_traced(&g, &cfg, &[0, 0, 0], &rec, |_, _| {});
            assert_eq!(report.executed, g.len());
            assert_eq!(report.segments.len(), g.len());
            let trace = rec.take();
            assert_eq!(trace.dropped, 0);
            let exec = trace.counter_total("rt.exec");
            assert_eq!(exec as usize, g.len(), "workers={workers}");
            let by_path = trace.counter_total("rt.local")
                + trace.counter_total("rt.inject")
                + trace.counter_total("rt.steal");
            assert_eq!(by_path, exec, "workers={workers}");
            // One rt.task event per task, and the run span is balanced.
            assert_eq!(trace.named("rt.task").count(), g.len());
            assert_eq!(trace.named("rt.run").count(), 2);
        }
    }

    #[test]
    fn disabled_recorder_without_record_trace_skips_segments() {
        let g = layered(3, 4, 2);
        let cfg = RuntimeConfig {
            record_trace: false,
            ..RuntimeConfig::new(1, 2)
        };
        let report = execute_traced(&g, &cfg, &[0, 0], Recorder::off(), |_, _| {});
        assert_eq!(report.executed, g.len());
        assert!(report.segments.is_empty());
    }

    #[test]
    fn empty_graph_returns_immediately() {
        let g = TaskGraph::assemble(Vec::new(), Vec::new(), 1, 1);
        let report = execute(&g, &RuntimeConfig::new(1, 1), &[0], |_, _| {});
        assert_eq!(report.executed, 0);
    }
}
