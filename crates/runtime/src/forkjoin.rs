//! Scoped fork-join execution over the work-stealing deques.
//!
//! [`fork_join`] runs a dynamically growing tree of closures on `n_workers`
//! threads using the same fabric as the DAG executor ([`crate::groups`]):
//! one LIFO owner deque per worker, FIFO stealing, and a FIFO injector that
//! seeds the root job. Jobs receive a [`ForkCtx`] and may [`ForkCtx::spawn`]
//! further jobs; `fork_join` returns once every transitively spawned job has
//! finished.
//!
//! # Determinism contract
//!
//! The *schedule* (which worker runs which job, in what interleaving) is
//! nondeterministic; callers that need deterministic results must make every
//! job a pure function of its own inputs and merge job outputs by a fixed,
//! schedule-independent order (disjoint output slots indexed by job
//! identity). The parallel partitioner (`tempart-partition::par`) and the
//! pipeline sweep (`tempart-core`) are built exactly this way, and their
//! bit-identity to the sequential code paths is enforced by tests and by the
//! `ci.sh` worker-matrix stage.
//!
//! # Worker-count knob
//!
//! [`env_workers`] reads the process-wide `TEMPART_WORKERS` variable — the
//! single knob the CLI, the benches and CI use to select the fork-join
//! width. It defaults to `1` (fully sequential), so nothing parallelizes
//! unless asked to.

use crate::groups::{Group, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A queued fork-join job: a boxed closure run at most once.
type Job<'env> = Box<dyn FnOnce(&ForkCtx<'_, 'env>) + Send + 'env>;

/// Shared state of one [`fork_join`] scope.
struct FjShared<'env> {
    group: Group<Job<'env>>,
    /// Jobs spawned but not yet finished. Incremented *before* a job is
    /// pushed, decremented after it returns; the scope is complete when this
    /// reaches zero (a job in flight keeps its own count alive, so the
    /// counter can never reach zero while more work may still be spawned).
    pending: AtomicUsize,
}

/// Per-worker execution context handed to every job.
///
/// Spawned jobs go to this worker's *local* deque (LIFO for the owner —
/// the just-spawned child runs next, keeping the recursion depth-first and
/// cache-hot), where idle siblings steal from the *oldest* end (FIFO — a
/// thief takes the root of the largest untouched subtree).
pub struct ForkCtx<'fj, 'env> {
    shared: &'fj FjShared<'env>,
    local: &'fj Worker<Job<'env>>,
    index: usize,
}

impl<'fj, 'env> ForkCtx<'fj, 'env> {
    /// Index of the worker currently running this job (`0..workers()`).
    /// Stable for the duration of one job body; useful as a stripe hint for
    /// contention-striped resource pools.
    pub fn worker_index(&self) -> usize {
        self.index
    }

    /// Total number of workers in this fork-join scope.
    pub fn workers(&self) -> usize {
        self.shared.group.stealers.len()
    }

    /// Spawns `job` into the scope. It may run on any worker, at any point
    /// before `fork_join` returns.
    pub fn spawn(&self, job: impl FnOnce(&ForkCtx<'_, 'env>) + Send + 'env) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.local.push(Box::new(job));
    }
}

/// Runs `root` (and everything it transitively spawns) to completion on
/// `n_workers` worker threads, blocking the calling thread until the scope
/// drains.
///
/// `n_workers == 1` executes on the calling thread with no thread spawned at
/// all — the sequential path costs one deque push/pop per job. With more
/// workers, scoped threads are spawned for the duration of the call; starved
/// workers yield, then back off to short parks, so oversubscribed boxes
/// (more workers than cores) lose almost nothing to polling.
///
/// # Panics
///
/// Panics if `n_workers == 0`, and propagates panics from job bodies.
pub fn fork_join<'env, F>(n_workers: usize, root: F)
where
    F: FnOnce(&ForkCtx<'_, 'env>) + Send + 'env,
{
    assert!(n_workers >= 1, "need at least one fork-join worker");
    let (group, deques) = Group::<Job<'env>>::new(n_workers);
    let shared = FjShared {
        group,
        pending: AtomicUsize::new(1),
    };
    shared.group.injector.push(Box::new(root));

    if n_workers == 1 {
        worker_loop(&shared, &deques[0], 0);
        return;
    }
    let shared = &shared;
    let mut payload: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_workers);
        for (index, local) in deques.iter().enumerate() {
            handles.push(scope.spawn(move || worker_loop(shared, local, index)));
        }
        // Join every worker before propagating: a panicking job's pending
        // decrement happens in a drop guard (see `worker_loop`), so the
        // survivors drain the remaining queued jobs and exit normally
        // instead of spinning on a count that never reaches zero.
        for h in handles {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
    });
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

/// One worker's drain loop: run jobs until the scope's pending count hits
/// zero. Starvation backoff: yield first (cheap when oversubscribed), then
/// park in growing sleeps capped at 500 µs so late-arriving stolen work is
/// still picked up promptly.
fn worker_loop<'env>(shared: &FjShared<'env>, local: &Worker<Job<'env>>, index: usize) {
    let mut idle_rounds = 0u32;
    loop {
        if shared.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        let Some(job) = shared.group.find_task(local, index) else {
            idle_rounds += 1;
            if idle_rounds <= 16 {
                std::thread::yield_now();
            } else {
                let us = (u64::from(idle_rounds - 16) * 20).min(500);
                std::thread::sleep(Duration::from_micros(us));
            }
            continue;
        };
        idle_rounds = 0;
        // The decrement lives in a drop guard so a panicking job still
        // retires its pending count — without it, the sibling workers of a
        // panicked thread would spin forever waiting for zero while the
        // scope waits for them: a deadlock instead of a propagated panic.
        struct Retire<'a>(&'a AtomicUsize);
        impl Drop for Retire<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _retire = Retire(&shared.pending);
        job(&ForkCtx {
            shared,
            local,
            index,
        });
    }
}

/// The process-wide fork-join width: `TEMPART_WORKERS` if set to a positive
/// integer, else `1` (sequential).
///
/// This is *the* knob the `tempart` CLI (`partition`, `trace`, `compare`),
/// the bench binaries and the `ci.sh` worker matrix honour; results are
/// bit-identical at every setting, only wall-clock changes.
pub fn env_workers() -> usize {
    std::env::var("TEMPART_WORKERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn runs_root_once() {
        for workers in [1usize, 4] {
            let hits = AtomicU64::new(0);
            fork_join(workers, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 1, "workers={workers}");
        }
    }

    #[test]
    fn recursive_spawn_tree_completes() {
        // A binary tree of depth 10: 2^10 leaves must all be counted,
        // regardless of worker count or steal order.
        for workers in [1usize, 2, 4] {
            let leaves = AtomicU64::new(0);
            fn node<'env>(ctx: &ForkCtx<'_, 'env>, depth: u32, leaves: &'env AtomicU64) {
                if depth == 0 {
                    leaves.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                // One child spawned, one recursed inline — the shape the
                // parallel partitioner uses.
                let l = leaves;
                ctx.spawn(move |c| node(c, depth - 1, l));
                node(ctx, depth - 1, leaves);
            }
            let leaves_ref = &leaves;
            fork_join(workers, move |ctx| node(ctx, 10, leaves_ref));
            assert_eq!(leaves.load(Ordering::Relaxed), 1 << 10, "workers={workers}");
        }
    }

    #[test]
    fn disjoint_slot_outputs_are_schedule_independent() {
        // Each job writes a pure function of its identity into its own
        // slot: outputs must match the sequential fill at every width.
        let n = 257usize;
        let expected: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for workers in [1usize, 3, 8] {
            let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let out_ref = &out;
            fork_join(workers, move |ctx| {
                for (i, slot) in out_ref.iter().enumerate() {
                    ctx.spawn(move |_| {
                        slot.store((i as u64).wrapping_mul(0x9E37), Ordering::Relaxed);
                    });
                }
            });
            let got: Vec<u64> = out.iter().map(|a| a.load(Ordering::Relaxed)).collect();
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn worker_index_is_in_range_and_width_reported() {
        let seen = Mutex::new(Vec::new());
        let seen_ref = &seen;
        fork_join(3, move |ctx| {
            assert_eq!(ctx.workers(), 3);
            for _ in 0..64 {
                ctx.spawn(move |c| {
                    assert!(c.worker_index() < c.workers());
                    seen_ref.lock().unwrap().push(c.worker_index());
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 64);
    }

    #[test]
    fn single_worker_runs_on_calling_thread() {
        let main_id = std::thread::current().id();
        fork_join(1, move |ctx| {
            assert_eq!(std::thread::current().id(), main_id);
            ctx.spawn(move |_| {
                assert_eq!(std::thread::current().id(), main_id);
            });
        });
    }

    #[test]
    fn panicking_job_propagates_without_deadlock() {
        // A job that panics must not hang the scope: its pending count is
        // retired by the drop guard, siblings finish their work, and the
        // panic payload surfaces from `fork_join` itself.
        for workers in [1usize, 4] {
            let done = AtomicU64::new(0);
            let done_ref = &done;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                fork_join(workers, move |ctx| {
                    for i in 0..32 {
                        ctx.spawn(move |_| {
                            if i == 13 {
                                panic!("boom from job {i}");
                            }
                            done_ref.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }));
            let err = result.expect_err("panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| (*err.downcast_ref::<&str>().unwrap()).to_string());
            assert!(msg.contains("boom from job 13"), "workers={workers}: {msg}");
            // At workers > 1 the survivors drain the remaining queue; at
            // workers == 1 the panic unwinds straight through the drain
            // loop, so only jobs popped before the panicking one ran (the
            // owner deque is LIFO: 31 down to 14, then 13 panics).
            if workers > 1 {
                assert_eq!(done.load(Ordering::Relaxed), 31, "workers={workers}");
            } else {
                assert_eq!(done.load(Ordering::Relaxed), 18, "workers={workers}");
            }
        }
    }

    #[test]
    fn env_workers_parses() {
        // Cannot mutate the environment safely in-process across tests;
        // exercise the parse contract through the public default instead.
        match std::env::var("TEMPART_WORKERS") {
            Ok(v) => {
                let expect = v
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .unwrap_or(1);
                assert_eq!(env_workers(), expect);
            }
            Err(_) => assert_eq!(env_workers(), 1),
        }
    }
}
