//! Mesh export: legacy VTK and CSV, for inspection in ParaView/VisIt.

use crate::mesh::Mesh;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Serialises the mesh as a legacy-VTK unstructured grid (hexahedral cells,
/// one per finite-volume cell) with `tau`, `depth` and optional `domain`
/// cell-data arrays. Corners are emitted per cell (8 points each, not
/// deduplicated) — simple and robust for visualisation purposes.
pub fn to_vtk(mesh: &Mesh, part: Option<&[u32]>) -> String {
    if let Some(p) = part {
        assert_eq!(p.len(), mesh.n_cells(), "one domain per cell");
    }
    let n = mesh.n_cells();
    let mut out = String::with_capacity(n * 200);
    out.push_str("# vtk DataFile Version 3.0\n");
    out.push_str("tempart mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n");
    let _ = writeln!(out, "POINTS {} double", 8 * n);
    for cell in mesh.cells() {
        let h = cell.volume.cbrt() / 2.0;
        let [cx, cy, cz] = cell.centroid;
        // VTK_HEXAHEDRON corner order.
        for (dx, dy, dz) in [
            (-1.0, -1.0, -1.0),
            (1.0, -1.0, -1.0),
            (1.0, 1.0, -1.0),
            (-1.0, 1.0, -1.0),
            (-1.0, -1.0, 1.0),
            (1.0, -1.0, 1.0),
            (1.0, 1.0, 1.0),
            (-1.0, 1.0, 1.0),
        ] {
            let _ = writeln!(out, "{} {} {}", cx + dx * h, cy + dy * h, cz + dz * h);
        }
    }
    let _ = writeln!(out, "CELLS {} {}", n, 9 * n);
    for c in 0..n {
        let b = 8 * c;
        let _ = writeln!(
            out,
            "8 {} {} {} {} {} {} {} {}",
            b,
            b + 1,
            b + 2,
            b + 3,
            b + 4,
            b + 5,
            b + 6,
            b + 7
        );
    }
    let _ = writeln!(out, "CELL_TYPES {n}");
    for _ in 0..n {
        out.push_str("12\n"); // VTK_HEXAHEDRON
    }
    let _ = writeln!(out, "CELL_DATA {n}");
    out.push_str("SCALARS tau int 1\nLOOKUP_TABLE default\n");
    for &t in mesh.tau() {
        let _ = writeln!(out, "{t}");
    }
    out.push_str("SCALARS depth int 1\nLOOKUP_TABLE default\n");
    for cell in mesh.cells() {
        let _ = writeln!(out, "{}", cell.depth);
    }
    if let Some(p) = part {
        out.push_str("SCALARS domain int 1\nLOOKUP_TABLE default\n");
        for &d in p {
            let _ = writeln!(out, "{d}");
        }
    }
    out
}

/// Writes [`to_vtk`] output to a file.
pub fn write_vtk(mesh: &Mesh, part: Option<&[u32]>, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(to_vtk(mesh, part).as_bytes())
}

/// Serialises per-cell data as CSV: `cell,x,y,z,volume,depth,tau[,domain]`.
pub fn cells_csv(mesh: &Mesh, part: Option<&[u32]>) -> String {
    let mut out = String::from(if part.is_some() {
        "cell,x,y,z,volume,depth,tau,domain\n"
    } else {
        "cell,x,y,z,volume,depth,tau\n"
    });
    for (i, cell) in mesh.cells().iter().enumerate() {
        let _ = write!(
            out,
            "{},{},{},{},{},{},{}",
            i,
            cell.centroid[0],
            cell.centroid[1],
            cell.centroid[2],
            cell.volume,
            cell.depth,
            mesh.tau()[i]
        );
        if let Some(p) = part {
            let _ = write!(out, ",{}", p[i]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::{Octree, OctreeConfig};
    use crate::temporal::TemporalScheme;

    fn tiny() -> Mesh {
        let cfg = OctreeConfig {
            base_depth: 1,
            max_depth: 1,
        };
        let mut m = Mesh::from_octree(&Octree::build(&cfg, |_, _, _| false));
        TemporalScheme::new(1).assign(&mut m);
        m
    }

    #[test]
    fn vtk_structure() {
        let m = tiny();
        let s = to_vtk(&m, None);
        assert!(s.starts_with("# vtk DataFile Version 3.0"));
        assert!(s.contains("POINTS 64 double"));
        assert!(s.contains("CELLS 8 72"));
        assert!(s.contains("SCALARS tau int 1"));
        assert!(!s.contains("SCALARS domain"));
        // 8 hexahedron type codes after the CELL_TYPES header.
        let types = s.split("CELL_TYPES 8\n").nth(1).unwrap();
        let codes: Vec<&str> = types.lines().take_while(|l| *l == "12").collect();
        assert_eq!(codes.len(), 8);
    }

    #[test]
    fn vtk_with_domains() {
        let m = tiny();
        let part = vec![0u32, 0, 1, 1, 2, 2, 3, 3];
        let s = to_vtk(&m, Some(&part));
        assert!(s.contains("SCALARS domain int 1"));
        assert!(s.trim_end().ends_with('3'));
    }

    #[test]
    fn csv_rows() {
        let m = tiny();
        let s = cells_csv(&m, None);
        assert_eq!(s.lines().count(), 9);
        assert!(s
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("0,0.25,0.25,0.25,0.125,1,0"));
    }

    #[test]
    fn write_roundtrip() {
        let m = tiny();
        let dir = std::env::temp_dir().join("tempart_vtk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mesh.vtk");
        write_vtk(&m, None, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("UNSTRUCTURED_GRID"));
        std::fs::remove_file(&path).ok();
    }
}
