//! Seedable temporal-level drift: the moving refinement front of a
//! transient simulation, reduced to its partitioning-relevant effect.
//!
//! FLUSEPA's temporal levels are not static — as the flow (a plume, a
//! shock, a separating booster) moves through the mesh, the radially graded
//! τ assignment moves with it, and the partitioner is asked to *re*balance
//! an already-placed mesh whose weights have drifted. [`DriftConfig`]
//! models exactly that: a graded-sphere level assignment (the
//! [`assign_radial`] grading the experiments use) whose centre translates
//! at a fixed velocity per step, with an optional seeded jitter so
//! stochastic drift stays reproducible. Step `s` is a pure function of
//! `(config, s)` — replaying a sequence from any step gives bit-identical
//! level assignments, which is what lets the worker-matrix fingerprints and
//! the golden frontier test pin whole drift sequences.

use crate::mesh::Mesh;
use crate::temporal::assign_radial;

/// A deterministic drifting refinement front: graded-sphere temporal
/// levels whose centre moves every step.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Centre of the refinement front at step 0.
    pub centre: [f64; 3],
    /// Strictly increasing grading radii (cells inside `radii[i]` get
    /// level `i`; outside all radii, level `radii.len()`).
    pub radii: Vec<f64>,
    /// Centre translation per step.
    pub velocity: [f64; 3],
    /// Amplitude of the seeded per-step centre wobble (0 disables it).
    pub jitter: f64,
    /// Seed of the jitter stream; unused when `jitter == 0`.
    pub seed: u64,
}

/// SplitMix64 — the same tiny generator the experiment binaries use, inlined
/// here because `tempart-mesh` deliberately depends on `tempart-graph` only.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash word to `[-1, 1)`.
fn unit(word: u64) -> f64 {
    (word >> 12) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

impl DriftConfig {
    /// The pinned graded-CYLINDER drift the repartitioning experiments,
    /// fingerprints and golden tests share: the `ext_drift` grading
    /// (radii 0.08 / 0.20 / 0.40 around the domain centre, four temporal
    /// levels) translating along +x by 0.01 per step, jitter off.
    pub fn graded_cylinder() -> Self {
        Self {
            centre: [0.5, 0.5, 0.5],
            radii: vec![0.08, 0.20, 0.40],
            velocity: [0.01, 0.0, 0.0],
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Enables a seeded centre wobble of the given amplitude.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.jitter = jitter;
        self.seed = seed;
        self
    }

    /// The front centre at `step` — start + velocity·step, plus the seeded
    /// wobble when jitter is enabled. Pure in `(self, step)`.
    pub fn centre_at(&self, step: u32) -> [f64; 3] {
        let s = f64::from(step);
        let mut centre = [
            self.centre[0] + self.velocity[0] * s,
            self.centre[1] + self.velocity[1] * s,
            self.centre[2] + self.velocity[2] * s,
        ];
        if self.jitter != 0.0 {
            let base = splitmix64(self.seed ^ (u64::from(step).wrapping_mul(0x9E37_79B9)));
            for (a, c) in centre.iter_mut().enumerate() {
                *c += self.jitter * unit(splitmix64(base.wrapping_add(a as u64)));
            }
        }
        centre
    }

    /// Number of temporal levels every step of this drift produces.
    pub fn n_levels(&self) -> usize {
        self.radii.len() + 1
    }

    /// Re-grades `mesh`'s temporal levels for `step`: [`assign_radial`]
    /// around [`DriftConfig::centre_at`]`(step)`.
    pub fn apply(&self, mesh: &mut Mesh, step: u32) {
        assign_radial(mesh, self.centre_at(step), &self.radii);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cylinder_like, GeneratorConfig};

    #[test]
    fn drift_is_pure_in_step() {
        let cfg = DriftConfig::graded_cylinder();
        let base = cylinder_like(&GeneratorConfig { base_depth: 3 });
        let mut a = base.clone();
        let mut b = base.clone();
        // Apply out of order; only the step number may matter.
        cfg.apply(&mut a, 5);
        cfg.apply(&mut b, 2);
        cfg.apply(&mut b, 5);
        assert_eq!(a.tau(), b.tau());
        assert_eq!(a.n_tau_levels(), cfg.n_levels() as u8);
    }

    #[test]
    fn drift_actually_moves_levels() {
        let cfg = DriftConfig::graded_cylinder();
        let base = cylinder_like(&GeneratorConfig { base_depth: 3 });
        let mut a = base.clone();
        let mut b = base.clone();
        cfg.apply(&mut a, 0);
        cfg.apply(&mut b, 8);
        assert_ne!(a.tau(), b.tau(), "8 steps of drift must re-level cells");
        assert_eq!(cfg.centre_at(8)[0], 0.5 + 0.08);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let cfg = DriftConfig::graded_cylinder().with_jitter(0.005, 42);
        let c1 = cfg.centre_at(3);
        let c2 = cfg.centre_at(3);
        assert_eq!(c1, c2, "same seed and step must give the same centre");
        let plain = DriftConfig::graded_cylinder().centre_at(3);
        for a in 0..3 {
            assert!((c1[a] - plain[a]).abs() <= 0.005 + 1e-12);
        }
        let other = DriftConfig::graded_cylinder().with_jitter(0.005, 43);
        assert_ne!(other.centre_at(3), c1, "different seed, different wobble");
    }
}
