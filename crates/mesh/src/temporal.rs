//! Temporal-level assignment and operating costs.
//!
//! In an explicit solver the maximum stable time step of a cell scales with
//! its size (CFL condition), so the octree depth of a cell maps directly to a
//! temporal level: each coarsening octave doubles the allowed time step. The
//! paper's scheme assigns level τ = 0 to the finest cells (updated every
//! subiteration) and τ = τmax to the coarsest (updated once per iteration);
//! the *operating cost* of a τ-cell over one full iteration is `2^(τmax−τ)`.

use crate::mesh::Mesh;

/// Assignment rule from cell size to temporal level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalScheme {
    /// Number of temporal-level classes to produce (τ ∈ `0..n_levels`).
    pub n_levels: u8,
}

impl TemporalScheme {
    /// Creates a scheme with `n_levels` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_levels == 0` or `n_levels > 16`.
    pub fn new(n_levels: u8) -> Self {
        assert!(n_levels >= 1, "need at least one temporal level");
        assert!(
            n_levels <= 16,
            "more than 16 temporal levels is unsupported"
        );
        Self { n_levels }
    }

    /// Highest temporal level (`n_levels - 1`).
    pub fn tau_max(&self) -> u8 {
        self.n_levels - 1
    }

    /// Number of subiterations in one iteration: `2^τmax`.
    pub fn subiterations(&self) -> u32 {
        1u32 << self.tau_max()
    }

    /// Derives and installs temporal levels on `mesh` from cell depths: the
    /// deepest (finest) cells get τ = 0 and each octave of coarsening
    /// increments τ, saturating at `τmax`.
    pub fn assign(&self, mesh: &mut Mesh) {
        let deepest = mesh.cells().iter().map(|c| c.depth).max().unwrap_or(0);
        let tau: Vec<u8> = mesh
            .cells()
            .iter()
            .map(|c| (deepest - c.depth).min(self.tau_max()))
            .collect();
        mesh.set_tau(tau, self.n_levels);
    }

    /// True when level `tau` is *active* at subiteration `s` (0-based): a
    /// τ-cell is updated every `2^τ`-th subiteration.
    pub fn is_active(&self, tau: u8, subiter: u32) -> bool {
        debug_assert!(tau < self.n_levels);
        subiter.is_multiple_of(1u32 << tau)
    }

    /// The highest temporal level that is active at subiteration `s` — the
    /// first phase of the subiteration processes this level.
    pub fn max_active_level(&self, subiter: u32) -> u8 {
        let mut tau = self.tau_max();
        while tau > 0 && !self.is_active(tau, subiter) {
            tau -= 1;
        }
        tau
    }

    /// Number of times a τ-cell is updated over one full iteration; equals
    /// its operating cost `2^(τmax − τ)`.
    pub fn activations(&self, tau: u8) -> u32 {
        operating_cost(tau, self.tau_max())
    }
}

/// Re-assigns temporal levels *radially* around a hotspot centre: a cell
/// gets the smallest τ whose radius bound contains it (`dist < radii[τ]`),
/// or `radii.len()` (the coarsest class) outside all bounds.
///
/// This decouples the τ labels from cell sizes, which is physically loose
/// but exactly what is needed to *simulate temporal-level drift*: the paper
/// assumes levels "experience minimal evolution across iterations"; moving
/// the hotspot between calls lets experiments measure how a stale partition
/// degrades as that assumption weakens.
///
/// `radii` must be strictly increasing.
///
/// # Panics
///
/// Panics if `radii` is empty, not strictly increasing, or longer than 15.
pub fn assign_radial(mesh: &mut Mesh, centre: [f64; 3], radii: &[f64]) {
    assert!(!radii.is_empty(), "need at least one radius");
    assert!(radii.len() <= 15, "too many levels");
    assert!(
        radii.windows(2).all(|w| w[0] < w[1]),
        "radii must be strictly increasing"
    );
    let n_levels = radii.len() as u8 + 1;
    let tau: Vec<u8> = mesh
        .cells()
        .iter()
        .map(|c| {
            let d = ((c.centroid[0] - centre[0]).powi(2)
                + (c.centroid[1] - centre[1]).powi(2)
                + (c.centroid[2] - centre[2]).powi(2))
            .sqrt();
            radii.iter().position(|&r| d < r).unwrap_or(radii.len()) as u8
        })
        .collect();
    mesh.set_tau(tau, n_levels);
}

/// Operating cost of a cell of level `tau` in a mesh whose highest level is
/// `tau_max`: the number of updates it receives per iteration, `2^(τmax−τ)`.
///
/// # Panics
///
/// Panics if `tau > tau_max`.
pub fn operating_cost(tau: u8, tau_max: u8) -> u32 {
    assert!(tau <= tau_max, "tau exceeds tau_max");
    1u32 << (tau_max - tau)
}

/// Per-level cell counts: `hist[τ]` is the number of cells with level τ.
pub fn level_histogram(mesh: &Mesh) -> Vec<usize> {
    let mut hist = vec![0usize; mesh.n_tau_levels() as usize];
    for &t in mesh.tau() {
        hist[t as usize] += 1;
    }
    hist
}

/// Per-level share of total computation over one iteration, as fractions
/// summing to 1: `count_τ · 2^(τmax−τ)` normalised. Reproduces the
/// `%Computation` row of Table I.
pub fn computation_shares(mesh: &Mesh) -> Vec<f64> {
    let tau_max = mesh.n_tau_levels() - 1;
    let hist = level_histogram(mesh);
    let work: Vec<f64> = hist
        .iter()
        .enumerate()
        .map(|(t, &n)| n as f64 * f64::from(operating_cost(t as u8, tau_max)))
        .collect();
    let total: f64 = work.iter().sum();
    if total == 0.0 {
        return vec![0.0; hist.len()];
    }
    work.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::{Octree, OctreeConfig};

    #[test]
    fn operating_cost_doubles_per_level() {
        assert_eq!(operating_cost(0, 3), 8);
        assert_eq!(operating_cost(1, 3), 4);
        assert_eq!(operating_cost(2, 3), 2);
        assert_eq!(operating_cost(3, 3), 1);
    }

    #[test]
    fn activity_pattern_matches_figure_4() {
        // τmax = 2 → 4 subiterations. τ=0 active at each, τ=1 at 0 and 2,
        // τ=2 only at 0.
        let s = TemporalScheme::new(3);
        assert_eq!(s.subiterations(), 4);
        let active: Vec<Vec<bool>> = (0..3u8)
            .map(|t| (0..4).map(|i| s.is_active(t, i)).collect())
            .collect();
        assert_eq!(active[0], vec![true, true, true, true]);
        assert_eq!(active[1], vec![true, false, true, false]);
        assert_eq!(active[2], vec![true, false, false, false]);
    }

    #[test]
    fn max_active_level_per_subiteration() {
        let s = TemporalScheme::new(3);
        assert_eq!(s.max_active_level(0), 2);
        assert_eq!(s.max_active_level(1), 0);
        assert_eq!(s.max_active_level(2), 1);
        assert_eq!(s.max_active_level(3), 0);
    }

    #[test]
    fn total_activations_conserved() {
        // Sum over subiterations of active levels equals per-level activations.
        let s = TemporalScheme::new(4);
        for tau in 0..4u8 {
            let by_subiter = (0..s.subiterations())
                .filter(|&i| s.is_active(tau, i))
                .count() as u32;
            assert_eq!(by_subiter, s.activations(tau));
        }
    }

    #[test]
    fn assign_maps_depth_to_tau() {
        let cfg = OctreeConfig {
            base_depth: 1,
            max_depth: 3,
        };
        // Refine near origin corner twice.
        let t = Octree::build(&cfg, |c, _, _| c[0] + c[1] + c[2] < 0.4);
        let mut m = crate::mesh::Mesh::from_octree(&t);
        TemporalScheme::new(3).assign(&mut m);
        let deepest = m.cells().iter().map(|c| c.depth).max().unwrap();
        for (cell, &tau) in m.cells().iter().zip(m.tau()) {
            assert_eq!(tau, (deepest - cell.depth).min(2));
        }
        let hist = level_histogram(&m);
        assert_eq!(hist.iter().sum::<usize>(), m.n_cells());
        assert!(hist[0] > 0, "finest level must be populated");
    }

    #[test]
    fn computation_shares_sum_to_one() {
        let cfg = OctreeConfig {
            base_depth: 2,
            max_depth: 4,
        };
        let t = Octree::build(&cfg, |c, _, _| {
            let d = (c[0] - 0.5)
                .abs()
                .max((c[1] - 0.5).abs())
                .max((c[2] - 0.5).abs());
            d < 0.2
        });
        let mut m = crate::mesh::Mesh::from_octree(&t);
        TemporalScheme::new(3).assign(&mut m);
        let shares = computation_shares(&m);
        assert_eq!(shares.len(), 3);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tau exceeds tau_max")]
    fn cost_panics_on_bad_tau() {
        let _ = operating_cost(4, 3);
    }

    #[test]
    fn radial_assignment_layers() {
        let cfg = OctreeConfig {
            base_depth: 3,
            max_depth: 3,
        };
        let mut m = crate::mesh::Mesh::from_octree(&Octree::build(&cfg, |_, _, _| false));
        assign_radial(&mut m, [0.5, 0.5, 0.5], &[0.2, 0.45]);
        assert_eq!(m.n_tau_levels(), 3);
        for cell in 0..m.n_cells() as u32 {
            let c = m.cells()[cell as usize].centroid;
            let d = ((c[0] - 0.5f64).powi(2) + (c[1] - 0.5).powi(2) + (c[2] - 0.5).powi(2)).sqrt();
            let expected = if d < 0.2 {
                0
            } else if d < 0.45 {
                1
            } else {
                2
            };
            assert_eq!(m.cell_tau(cell), expected);
        }
        // Moving the hotspot changes the labels.
        let before = m.tau().to_vec();
        assign_radial(&mut m, [0.2, 0.5, 0.5], &[0.2, 0.45]);
        assert_ne!(before, m.tau());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn radial_rejects_bad_radii() {
        let cfg = OctreeConfig {
            base_depth: 2,
            max_depth: 2,
        };
        let mut m = crate::mesh::Mesh::from_octree(&Octree::build(&cfg, |_, _, _| false));
        assign_radial(&mut m, [0.5; 3], &[0.4, 0.2]);
    }
}
