//! Graded octree refinement with 2:1 balance.
//!
//! The octree lives in the unit cube `[0,1]^3`. A leaf at depth `d` occupies
//! an axis-aligned cube of side `2^{-d}` at integer coordinates
//! `(x, y, z) ∈ [0, 2^d)^3`. Refinement is driven by a caller-supplied
//! predicate; after refinement the tree is *2:1 balanced*: face-adjacent
//! leaves differ by at most one depth level, which bounds hanging faces to
//! 4-to-1 and keeps face enumeration local.

use std::collections::HashMap;

/// Key of a leaf: `(depth, x, y, z)`.
pub type LeafKey = (u8, u32, u32, u32);

/// Configuration of an octree build.
#[derive(Debug, Clone)]
pub struct OctreeConfig {
    /// Uniform starting depth: the build begins from a `2^base_depth`³ grid.
    pub base_depth: u8,
    /// Maximum depth leaves may reach through refinement.
    pub max_depth: u8,
}

impl OctreeConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth < base_depth` or `max_depth` exceeds 20 (the
    /// coordinate budget of a `u32` with headroom).
    pub fn checked(self) -> Self {
        assert!(self.max_depth >= self.base_depth, "max_depth < base_depth");
        assert!(self.max_depth <= 20, "max_depth too large");
        self
    }
}

/// A balanced, graded octree. Leaves are the finite-volume cells.
#[derive(Debug, Clone)]
pub struct Octree {
    /// Leaf set; value is the leaf's index in insertion order (rebuilt at the
    /// end so iteration order is deterministic).
    leaves: HashMap<LeafKey, u32>,
    /// Sorted leaf keys, index = cell id.
    ordered: Vec<LeafKey>,
    max_depth: u8,
}

/// The six axis directions used for neighbour lookups.
pub const DIRECTIONS: [(i64, i64, i64); 6] = [
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
];

impl Octree {
    /// Builds an octree: start from a uniform grid at `base_depth`, refine
    /// every leaf for which `refine(centre, size, depth)` returns true (until
    /// `max_depth`), then enforce 2:1 balance.
    ///
    /// `refine` receives the leaf centre in `[0,1]^3`, its side length and its
    /// current depth.
    pub fn build<F>(config: &OctreeConfig, mut refine: F) -> Self
    where
        F: FnMut([f64; 3], f64, u8) -> bool,
    {
        let config = config.clone().checked();
        let mut leaves: HashMap<LeafKey, u32> = HashMap::new();
        let n0 = 1u32 << config.base_depth;
        let mut work: Vec<LeafKey> = Vec::new();
        for z in 0..n0 {
            for y in 0..n0 {
                for x in 0..n0 {
                    work.push((config.base_depth, x, y, z));
                }
            }
        }
        // Refinement pass: depth-first over the worklist.
        while let Some(key) = work.pop() {
            let (d, x, y, z) = key;
            if d < config.max_depth && refine(Self::centre_of(key), Self::size_of(d), d) {
                for dz in 0..2u32 {
                    for dy in 0..2u32 {
                        for dx in 0..2u32 {
                            work.push((d + 1, 2 * x + dx, 2 * y + dy, 2 * z + dz));
                        }
                    }
                }
            } else {
                leaves.insert(key, 0);
            }
        }
        let mut tree = Self {
            leaves,
            ordered: Vec::new(),
            max_depth: config.max_depth,
        };
        tree.balance();
        tree.finalize();
        tree
    }

    /// Centre of a leaf in `[0,1]^3`.
    pub fn centre_of(key: LeafKey) -> [f64; 3] {
        let (d, x, y, z) = key;
        let h = Self::size_of(d);
        [
            (f64::from(x) + 0.5) * h,
            (f64::from(y) + 0.5) * h,
            (f64::from(z) + 0.5) * h,
        ]
    }

    /// Side length of a leaf at depth `d`.
    #[inline]
    pub fn size_of(d: u8) -> f64 {
        1.0 / f64::from(1u32 << d)
    }

    /// Enforces the 2:1 balance condition by splitting coarse leaves adjacent
    /// to much finer ones, iterating to a fixed point.
    fn balance(&mut self) {
        let mut queue: Vec<LeafKey> = self.leaves.keys().copied().collect();
        while let Some(key) = queue.pop() {
            if !self.leaves.contains_key(&key) {
                continue; // already split
            }
            let (d, x, y, z) = key;
            if d == 0 {
                continue;
            }
            // For each direction, the neighbour *region* at our depth must be
            // covered by leaves of depth >= d-1. If it is covered by an
            // ancestor at depth <= d-2, that ancestor must split.
            for &(dx, dy, dz) in &DIRECTIONS {
                let n = 1i64 << d;
                let (nx, ny, nz) = (i64::from(x) + dx, i64::from(y) + dy, i64::from(z) + dz);
                if nx < 0 || ny < 0 || nz < 0 || nx >= n || ny >= n || nz >= n {
                    continue; // domain boundary
                }
                let (nx, ny, nz) = (nx as u32, ny as u32, nz as u32);
                // Walk up ancestors of the neighbour coordinate.
                let mut ad = d;
                let (mut ax, mut ay, mut az) = (nx, ny, nz);
                let found = loop {
                    if self.leaves.contains_key(&(ad, ax, ay, az)) {
                        break Some(ad);
                    }
                    if ad == 0 {
                        break None;
                    }
                    ad -= 1;
                    ax >>= 1;
                    ay >>= 1;
                    az >>= 1;
                };
                if let Some(ad) = found {
                    if ad + 1 < d {
                        // Too coarse: split the ancestor leaf.
                        let split_key = (ad, ax, ay, az);
                        self.leaves.remove(&split_key);
                        for cz in 0..2u32 {
                            for cy in 0..2u32 {
                                for cx in 0..2u32 {
                                    let child = (ad + 1, 2 * ax + cx, 2 * ay + cy, 2 * az + cz);
                                    self.leaves.insert(child, 0);
                                    queue.push(child);
                                }
                            }
                        }
                        // Re-examine ourselves: the new children may still be
                        // too coarse relative to us.
                        queue.push(key);
                    }
                }
            }
        }
    }

    /// Sorts leaves deterministically and assigns cell ids.
    fn finalize(&mut self) {
        let mut keys: Vec<LeafKey> = self.leaves.keys().copied().collect();
        keys.sort_unstable();
        for (i, k) in keys.iter().enumerate() {
            *self.leaves.get_mut(k).unwrap() = i as u32;
        }
        self.ordered = keys;
    }

    /// Number of leaves (cells).
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// True when the tree has no leaves (never the case after `build`).
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Leaf keys in cell-id order.
    pub fn leaves(&self) -> &[LeafKey] {
        &self.ordered
    }

    /// Maximum depth the build was allowed to reach.
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Deepest depth actually present among leaves.
    pub fn deepest_leaf(&self) -> u8 {
        self.ordered.iter().map(|&(d, ..)| d).max().unwrap_or(0)
    }

    /// Looks up the cell id of the leaf covering neighbour of `key` in
    /// direction `dir`, searching same depth then coarser depths.
    ///
    /// Returns `None` at the domain boundary or if only *finer* leaves cover
    /// the region (the caller enumerates those from the finer side).
    pub fn same_or_coarser_neighbor(
        &self,
        key: LeafKey,
        dir: (i64, i64, i64),
    ) -> Option<(LeafKey, u32)> {
        let (d, x, y, z) = key;
        let n = 1i64 << d;
        let (nx, ny, nz) = (
            i64::from(x) + dir.0,
            i64::from(y) + dir.1,
            i64::from(z) + dir.2,
        );
        if nx < 0 || ny < 0 || nz < 0 || nx >= n || ny >= n || nz >= n {
            return None;
        }
        let (mut ax, mut ay, mut az) = (nx as u32, ny as u32, nz as u32);
        let mut ad = d;
        loop {
            if let Some(&id) = self.leaves.get(&(ad, ax, ay, az)) {
                return Some(((ad, ax, ay, az), id));
            }
            if ad == 0 {
                return None;
            }
            ad -= 1;
            ax >>= 1;
            ay >>= 1;
            az >>= 1;
        }
    }

    /// Verifies the 2:1 balance invariant; returns the first violating pair.
    pub fn check_balance(&self) -> Result<(), (LeafKey, LeafKey)> {
        for &key in &self.ordered {
            for &dir in &DIRECTIONS {
                if let Some((nk, _)) = self.same_or_coarser_neighbor(key, dir) {
                    if key.0 > nk.0 + 1 {
                        return Err((key, nk));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tree_has_grid_leaves() {
        let cfg = OctreeConfig {
            base_depth: 2,
            max_depth: 2,
        };
        let t = Octree::build(&cfg, |_, _, _| false);
        assert_eq!(t.len(), 64);
        assert_eq!(t.deepest_leaf(), 2);
        assert!(t.check_balance().is_ok());
    }

    #[test]
    fn refine_everything_once() {
        let cfg = OctreeConfig {
            base_depth: 1,
            max_depth: 2,
        };
        let t = Octree::build(&cfg, |_, _, d| d < 2);
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn corner_refinement_is_balanced() {
        // Refine aggressively near the origin corner only.
        let cfg = OctreeConfig {
            base_depth: 2,
            max_depth: 6,
        };
        let t = Octree::build(&cfg, |c, _, _| c[0] + c[1] + c[2] < 0.5);
        assert!(t.len() > 64);
        assert!(t.check_balance().is_ok());
        assert!(t.deepest_leaf() > 2);
    }

    #[test]
    fn neighbor_lookup_same_level() {
        let cfg = OctreeConfig {
            base_depth: 1,
            max_depth: 1,
        };
        let t = Octree::build(&cfg, |_, _, _| false);
        let key = (1u8, 0u32, 0u32, 0u32);
        let (nk, _) = t.same_or_coarser_neighbor(key, (1, 0, 0)).unwrap();
        assert_eq!(nk, (1, 1, 0, 0));
        assert!(t.same_or_coarser_neighbor(key, (-1, 0, 0)).is_none());
    }

    #[test]
    fn neighbor_lookup_coarser() {
        // Refine only the origin octant once.
        let cfg = OctreeConfig {
            base_depth: 1,
            max_depth: 2,
        };
        let t = Octree::build(&cfg, |c, _, d| {
            d == 1 && c[0] < 0.5 && c[1] < 0.5 && c[2] < 0.5
        });
        // A fine leaf at depth 2 adjacent to the coarse neighbour octant.
        let fine = (2u8, 1u32, 0u32, 0u32);
        assert!(t.leaves.contains_key(&fine));
        let (nk, _) = t.same_or_coarser_neighbor(fine, (1, 0, 0)).unwrap();
        assert_eq!(nk, (1, 1, 0, 0));
    }

    #[test]
    fn centres_and_sizes() {
        assert_eq!(Octree::size_of(0), 1.0);
        assert_eq!(Octree::size_of(3), 0.125);
        let c = Octree::centre_of((1, 1, 0, 1));
        assert_eq!(c, [0.75, 0.25, 0.75]);
    }

    #[test]
    fn determinism() {
        let cfg = OctreeConfig {
            base_depth: 2,
            max_depth: 5,
        };
        let f = |c: [f64; 3], _: f64, _: u8| (c[0] - 0.5).abs() < 0.2;
        let a = Octree::build(&cfg, f);
        let b = Octree::build(&cfg, f);
        assert_eq!(a.leaves(), b.leaves());
    }

    #[test]
    #[should_panic(expected = "max_depth < base_depth")]
    fn bad_config_panics() {
        let cfg = OctreeConfig {
            base_depth: 3,
            max_depth: 2,
        };
        let _ = Octree::build(&cfg, |_, _, _| false);
    }
}
