//! Synthetic stand-ins for the paper's three Airbus meshes.
//!
//! Each generator refines an octree around one or more *hotspots* whose
//! per-level capture radii were solved analytically from Table I's per-τ cell
//! fractions (see DESIGN.md): a cell at refinement stage `k` is split further
//! when its centre lies within the stage-`k` hotspot region. Absolute cell
//! counts scale with `base_depth` (each +1 multiplies the count by ~8), while
//! the per-level *fractions* — which drive all the partitioning behaviour the
//! paper studies — stay approximately constant.

use crate::mesh::Mesh;
use crate::octree::{Octree, OctreeConfig};
use crate::temporal::TemporalScheme;

/// Which of the paper's test meshes to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshCase {
    /// CYLINDER: a single central machinery piece, 4 temporal levels,
    /// 6.4 M cells in the paper.
    Cylinder,
    /// CUBE: three non-contiguous hotspots, 4 temporal levels, 152 k cells —
    /// the paper's "worst case" geometry.
    Cube,
    /// PPRIME_NOZZLE: installed-jet-noise nozzle, 3 temporal levels,
    /// 12.6 M cells in the paper.
    PprimeNozzle,
}

impl MeshCase {
    /// All cases, in the paper's presentation order.
    pub const ALL: [MeshCase; 3] = [MeshCase::Cylinder, MeshCase::Cube, MeshCase::PprimeNozzle];

    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            MeshCase::Cylinder => "CYLINDER",
            MeshCase::Cube => "CUBE",
            MeshCase::PprimeNozzle => "PPRIME_NOZZLE",
        }
    }

    /// Number of temporal levels in the paper's version of this mesh.
    pub fn n_levels(self) -> u8 {
        match self {
            MeshCase::Cylinder | MeshCase::Cube => 4,
            MeshCase::PprimeNozzle => 3,
        }
    }

    /// Per-τ cell fractions reported in Table I (τ = 0 first).
    pub fn paper_cell_fractions(self) -> &'static [f64] {
        match self {
            MeshCase::Cylinder => &[0.008, 0.043, 0.326, 0.623],
            MeshCase::Cube => &[0.020, 0.155, 0.003, 0.822],
            MeshCase::PprimeNozzle => &[0.119, 0.322, 0.559],
        }
    }

    /// Total cell count reported in Table I.
    pub fn paper_cell_count(self) -> usize {
        match self {
            MeshCase::Cylinder => 6_400_505,
            MeshCase::Cube => 151_817,
            MeshCase::PprimeNozzle => 12_594_374,
        }
    }

    /// Default `base_depth` giving a laptop-scale model of the paper's mesh.
    pub fn default_base_depth(self) -> u8 {
        match self {
            MeshCase::Cylinder => 5,
            MeshCase::Cube => 5,
            MeshCase::PprimeNozzle => 5,
        }
    }

    /// Generates the mesh with the given configuration.
    pub fn generate(self, config: &GeneratorConfig) -> Mesh {
        match self {
            MeshCase::Cylinder => cylinder_like(config),
            MeshCase::Cube => cube_like(config),
            MeshCase::PprimeNozzle => pprime_nozzle_like(config),
        }
    }

    /// Generates the mesh at its default scale.
    pub fn generate_default(self) -> Mesh {
        self.generate(&GeneratorConfig::for_case(self))
    }

    /// Number of refinement stages above the base grid (`max_depth -
    /// base_depth` of the octree build).
    pub fn extra_depth(self) -> u8 {
        match self {
            MeshCase::Cylinder | MeshCase::Cube => 3,
            MeshCase::PprimeNozzle => 2,
        }
    }

    /// The stage-`k` hotspot rule shared by the octree generators and the
    /// faces-free paper-scale cloud ([`crate::cloud`]): a cell centred at
    /// `c` that has already been refined `k` stages past the base grid is
    /// split once more iff this returns `true`. Capture radii per stage were
    /// solved analytically from Table I's per-τ cell fractions (DESIGN.md
    /// §2) and are independent of the base resolution.
    pub fn refine_stage(self, c: [f64; 3], k: usize) -> bool {
        match self {
            MeshCase::Cylinder => {
                // One vertical capsule around the domain centre axis; the
                // capsule half-height tracks the radius so the region volume
                // is ~4πR³ (cylinder of height 4R).
                const RADII: [f64; 3] = [0.162, 0.0437, 0.0123];
                let r = RADII[k];
                let a = [0.5, 0.5, 0.5 - 2.0 * r];
                let b = [0.5, 0.5, 0.5 + 2.0 * r];
                segment_distance(c, a, b) < r
            }
            MeshCase::Cube => {
                // Three non-contiguous spherical hotspots; r1 ≈ r0 makes the
                // τ=2 shell vanishingly thin (the paper's 0.3 %).
                const CENTRES: [[f64; 3]; 3] =
                    [[0.25, 0.25, 0.3], [0.75, 0.35, 0.7], [0.4, 0.75, 0.55]];
                const RADII: [f64; 3] = [0.0650, 0.0648, 0.0156];
                let r = RADII[k];
                CENTRES.iter().any(|&h| {
                    let dx = c[0] - h[0];
                    let dy = c[1] - h[1];
                    let dz = c[2] - h[2];
                    dx * dx + dy * dy + dz * dz < r * r
                })
            }
            MeshCase::PprimeNozzle => {
                // Jet capsule expanding from the nozzle exit along +x, with
                // the radius flaring downstream.
                const NOZZLE: [f64; 3] = [0.15, 0.5, 0.5];
                const SPANS: [f64; 2] = [0.70, 0.50];
                const RADII: [f64; 2] = [0.155, 0.0445];
                let end = [NOZZLE[0] + SPANS[k], NOZZLE[1], NOZZLE[2]];
                let t = ((c[0] - NOZZLE[0]) / SPANS[k]).clamp(0.0, 1.0);
                let r = RADII[k] * (0.85 + 0.45 * t);
                segment_distance(c, NOZZLE, end) < r
            }
        }
    }
}

/// Scale configuration for the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Uniform octree depth the build starts from; total cell count scales by
    /// roughly `8^base_depth`.
    pub base_depth: u8,
}

impl GeneratorConfig {
    /// The default laptop-scale configuration for `case`.
    pub fn for_case(case: MeshCase) -> Self {
        Self {
            base_depth: case.default_base_depth(),
        }
    }
}

fn finish(tree: &Octree, n_levels: u8) -> Mesh {
    let mut mesh = Mesh::from_octree(tree);
    TemporalScheme::new(n_levels).assign(&mut mesh);
    mesh
}

/// Distance from `p` to the segment `a`–`b`.
fn segment_distance(p: [f64; 3], a: [f64; 3], b: [f64; 3]) -> f64 {
    let ab = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let ap = [p[0] - a[0], p[1] - a[1], p[2] - a[2]];
    let len2 = ab[0] * ab[0] + ab[1] * ab[1] + ab[2] * ab[2];
    let t = if len2 == 0.0 {
        0.0
    } else {
        ((ap[0] * ab[0] + ap[1] * ab[1] + ap[2] * ab[2]) / len2).clamp(0.0, 1.0)
    };
    let q = [a[0] + t * ab[0], a[1] + t * ab[1], a[2] + t * ab[2]];
    let d = [p[0] - q[0], p[1] - q[1], p[2] - q[2]];
    (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
}

/// CYLINDER-like mesh: one central cylindrical hotspot, 4 temporal levels.
///
/// Capture radii per refinement stage solved from Table I fractions
/// (62.3 / 32.6 / 4.3 / 0.8 % for τ = 3..0): the stage-k region is a vertical
/// capsule of radius `R_k` around the domain centre axis.
pub fn cylinder_like(config: &GeneratorConfig) -> Mesh {
    case_mesh(MeshCase::Cylinder, config)
}

/// Octree build shared by the three cases: refine by
/// [`MeshCase::refine_stage`] for [`MeshCase::extra_depth`] stages past the
/// base grid, then assign temporal levels.
fn case_mesh(case: MeshCase, config: &GeneratorConfig) -> Mesh {
    let b = config.base_depth;
    let cfg = OctreeConfig {
        base_depth: b,
        max_depth: b + case.extra_depth(),
    };
    let tree = Octree::build(&cfg, |c, _, d| case.refine_stage(c, (d - b) as usize));
    finish(&tree, case.n_levels())
}

/// CUBE-like mesh: three non-contiguous spherical hotspots, 4 temporal
/// levels. The paper's CUBE is peculiar: a large τ=1 population but a nearly
/// empty τ=2 shell (0.3 %), so the stage-1 radius hugs the stage-0 radius.
pub fn cube_like(config: &GeneratorConfig) -> Mesh {
    case_mesh(MeshCase::Cube, config)
}

/// PPRIME_NOZZLE-like mesh: a jet cone expanding from a nozzle exit along
/// +x, 3 temporal levels (11.9 / 32.2 / 55.9 % for τ = 0..2).
pub fn pprime_nozzle_like(config: &GeneratorConfig) -> Mesh {
    case_mesh(MeshCase::PprimeNozzle, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::level_histogram;

    fn fractions(mesh: &Mesh) -> Vec<f64> {
        let hist = level_histogram(mesh);
        let total = mesh.n_cells() as f64;
        hist.into_iter().map(|n| n as f64 / total).collect()
    }

    /// Generated fraction must be within an absolute tolerance of Table I.
    fn assert_close(case: MeshCase, mesh: &Mesh, tol: f64) {
        let got = fractions(mesh);
        let want = case.paper_cell_fractions();
        assert_eq!(got.len(), want.len(), "{}", case.name());
        for (t, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() < tol,
                "{} τ={t}: generated {:.3} vs paper {:.3}",
                case.name(),
                g,
                w
            );
        }
    }

    #[test]
    fn cylinder_fractions_match_table1() {
        let m = cylinder_like(&GeneratorConfig { base_depth: 4 });
        assert!(m.n_cells() > 4096);
        assert_close(MeshCase::Cylinder, &m, 0.12);
    }

    #[test]
    fn cube_fractions_match_table1() {
        let m = cube_like(&GeneratorConfig { base_depth: 4 });
        assert_close(MeshCase::Cube, &m, 0.12);
    }

    #[test]
    fn pprime_fractions_match_table1() {
        let m = pprime_nozzle_like(&GeneratorConfig { base_depth: 4 });
        assert_close(MeshCase::PprimeNozzle, &m, 0.12);
    }

    #[test]
    fn all_levels_populated_at_default_scale() {
        for case in MeshCase::ALL {
            let m = case.generate(&GeneratorConfig { base_depth: 4 });
            let hist = level_histogram(&m);
            assert_eq!(hist.len(), case.n_levels() as usize, "{}", case.name());
            for (t, &n) in hist.iter().enumerate() {
                assert!(n > 0, "{} τ={t} empty", case.name());
            }
        }
    }

    #[test]
    fn meshes_are_connected() {
        for case in MeshCase::ALL {
            let m = case.generate(&GeneratorConfig { base_depth: 3 });
            let g = m.to_graph();
            assert_eq!(tempart_graph::count_components(&g), 1, "{}", case.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig { base_depth: 3 };
        let a = cylinder_like(&cfg);
        let b = cylinder_like(&cfg);
        assert_eq!(a.n_cells(), b.n_cells());
        assert_eq!(a.tau(), b.tau());
    }

    #[test]
    fn scaling_grows_roughly_octave() {
        let small = cube_like(&GeneratorConfig { base_depth: 3 });
        let large = cube_like(&GeneratorConfig { base_depth: 4 });
        let ratio = large.n_cells() as f64 / small.n_cells() as f64;
        assert!(ratio > 4.0, "scaling ratio {ratio}");
    }
}
