//! Faces-free paper-scale point clouds for the SFC fast path.
//!
//! Building a full [`Mesh`](crate::Mesh) materialises every face (~48 bytes
//! each, ~6 per cell), which at the paper's 6.4M–12.6M-cell sizes is
//! gigabytes of geometry the geometric partitioner never reads. An
//! [`SfcCloud`] generates only what the space-filling-curve pipeline needs —
//! one centroid and one temporal level per cell — by recursive descent with
//! the same per-stage hotspot rules the octree generators use
//! ([`MeshCase::refine_stage`]), skipping the 2:1 balance pass and the face
//! extraction entirely.
//!
//! The base grid is an arbitrary `nside³` lattice rather than a
//! power-of-eight octree level, so the total can be tuned to the paper's
//! exact Table I cell counts ([`paper_scale_nside`]) instead of the nearest
//! octave. Memory is ~25 bytes per cell (24 centroid + 1 level): the
//! 12.6M-cell PPRIME_NOZZLE cloud fits in ~315 MB.

use crate::generators::MeshCase;
use crate::temporal::operating_cost;

/// A point cloud standing in for a paper-scale mesh: per-cell centroid and
/// temporal level, no connectivity.
#[derive(Debug, Clone)]
pub struct SfcCloud {
    /// Cell centroids in the unit cube.
    pub centroids: Vec<[f64; 3]>,
    /// Temporal level per cell (0 = finest / most subiterations).
    pub tau: Vec<u8>,
    /// Number of temporal levels (`tau` values are `0..n_levels`).
    pub n_levels: u8,
}

impl SfcCloud {
    /// Number of cells in the cloud.
    pub fn n_points(&self) -> usize {
        self.centroids.len()
    }

    /// Per-cell operating cost `2^(τmax−τ)` — the SC_OC / SFC_OC weight.
    pub fn operating_costs(&self) -> Vec<u64> {
        let tau_max = self.n_levels - 1;
        self.tau
            .iter()
            .map(|&t| u64::from(operating_cost(t, tau_max)))
            .collect()
    }
}

/// Recursive descent over one base cell: split while the stage rule holds,
/// emit a leaf otherwise. `half` is the half-width of the current cell.
fn descend(
    case: MeshCase,
    c: [f64; 3],
    stage: u8,
    extra: u8,
    half: f64,
    emit: &mut impl FnMut([f64; 3], u8),
) {
    if stage < extra && case.refine_stage(c, stage as usize) {
        let q = half / 2.0;
        for dz in [-q, q] {
            for dy in [-q, q] {
                for dx in [-q, q] {
                    descend(
                        case,
                        [c[0] + dx, c[1] + dy, c[2] + dz],
                        stage + 1,
                        extra,
                        q,
                        emit,
                    );
                }
            }
        }
    } else {
        emit(c, stage);
    }
}

/// Walks the whole refinement forest for an `nside³` base grid, calling
/// `emit(centroid, stage)` once per leaf in a fixed deterministic order
/// (x-fastest over the base grid, then the fixed octant order per split).
fn walk(case: MeshCase, nside: usize, emit: &mut impl FnMut([f64; 3], u8)) {
    assert!(nside >= 1, "need at least one base cell per axis");
    let extra = case.extra_depth();
    let h = 1.0 / nside as f64;
    for z in 0..nside {
        for y in 0..nside {
            for x in 0..nside {
                let c = [
                    (x as f64 + 0.5) * h,
                    (y as f64 + 0.5) * h,
                    (z as f64 + 0.5) * h,
                ];
                descend(case, c, 0, extra, h / 2.0, emit);
            }
        }
    }
}

/// Generates the faces-free cloud for `case` on an `nside³` base grid.
///
/// Temporal levels follow the mesh rule (`TemporalScheme::assign`): the
/// deepest cells present get τ = 0 and each stage of coarsening increments
/// τ, saturating at `n_levels - 1`.
pub fn sfc_cloud(case: MeshCase, nside: usize) -> SfcCloud {
    let mut centroids = Vec::new();
    let mut stages = Vec::new();
    walk(case, nside, &mut |c, s| {
        centroids.push(c);
        stages.push(s);
    });
    let deepest = stages.iter().copied().max().unwrap_or(0);
    let tau_max = case.n_levels() - 1;
    let tau = stages
        .into_iter()
        .map(|s| (deepest - s).min(tau_max))
        .collect();
    SfcCloud {
        centroids,
        tau,
        n_levels: case.n_levels(),
    }
}

/// Counts the cells [`sfc_cloud`] would generate without allocating any of
/// them — the zero-allocation size check used to calibrate
/// [`paper_scale_nside`] and to gate paper-scale runs before committing
/// memory.
pub fn cloud_cell_count(case: MeshCase, nside: usize) -> usize {
    let mut n = 0usize;
    walk(case, nside, &mut |_, _| n += 1);
    n
}

/// Base resolution per axis that lands [`cloud_cell_count`] within a few
/// percent of the paper's Table I cell count for `case`
/// ([`MeshCase::paper_cell_count`]); calibrated by
/// `tests/paper_scale.rs::cloud_counts_match_table1`.
pub fn paper_scale_nside(case: MeshCase) -> usize {
    match case {
        // 6,395,584 cells vs the paper's 6,400,505 (−0.08 %).
        MeshCase::Cylinder => 159,
        // 152,510 cells vs the paper's 151,817 (+0.46 %).
        MeshCase::Cube => 50,
        // 12,609,871 cells vs the paper's 12,594,374 (+0.12 %).
        MeshCase::PprimeNozzle => 191,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GeneratorConfig;
    use crate::temporal::level_histogram;

    #[test]
    fn cloud_count_matches_generation() {
        for case in MeshCase::ALL {
            let n = cloud_cell_count(case, 24);
            let cloud = sfc_cloud(case, 24);
            assert_eq!(cloud.n_points(), n, "{}", case.name());
            assert_eq!(cloud.tau.len(), n);
        }
    }

    #[test]
    fn cloud_is_deterministic() {
        let a = sfc_cloud(MeshCase::Cylinder, 20);
        let b = sfc_cloud(MeshCase::Cylinder, 20);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.tau, b.tau);
    }

    #[test]
    fn cloud_levels_match_mesh_fractions() {
        // On a power-of-two base grid the cloud must reproduce the octree
        // generators' per-τ fractions up to the (small) 2:1-balance
        // correction the cloud deliberately skips.
        for case in MeshCase::ALL {
            let mesh = case.generate(&GeneratorConfig { base_depth: 5 });
            let hist = level_histogram(&mesh);
            let mesh_frac: Vec<f64> = hist
                .iter()
                .map(|&n| n as f64 / mesh.n_cells() as f64)
                .collect();
            let cloud = sfc_cloud(case, 32);
            let mut cloud_hist = vec![0usize; case.n_levels() as usize];
            for &t in &cloud.tau {
                cloud_hist[t as usize] += 1;
            }
            for (t, &n) in cloud_hist.iter().enumerate() {
                let f = n as f64 / cloud.n_points() as f64;
                assert!(
                    (f - mesh_frac[t]).abs() < 0.05,
                    "{} τ={t}: cloud {f:.3} vs mesh {:.3}",
                    case.name(),
                    mesh_frac[t]
                );
            }
        }
    }

    #[test]
    fn operating_costs_follow_levels() {
        let cloud = sfc_cloud(MeshCase::PprimeNozzle, 16);
        let costs = cloud.operating_costs();
        let tau_max = cloud.n_levels - 1;
        for (i, &t) in cloud.tau.iter().enumerate() {
            assert_eq!(costs[i], 1u64 << (tau_max - t));
        }
    }

    #[test]
    fn non_power_of_two_base_grid_works() {
        let n27 = cloud_cell_count(MeshCase::Cube, 27);
        let n32 = cloud_cell_count(MeshCase::Cube, 32);
        assert!(n27 >= 27 * 27 * 27);
        assert!(n32 > n27);
    }
}
