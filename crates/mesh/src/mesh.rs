//! The finite-volume mesh model: cells, faces, adjacency, graph export.

use crate::octree::{Octree, DIRECTIONS};
use tempart_graph::{CsrGraph, GraphBuilder};

/// A finite-volume cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell centre in the unit cube.
    pub centroid: [f64; 3],
    /// Cell volume.
    pub volume: f64,
    /// Octree depth the cell was generated at (size = `2^-depth`).
    pub depth: u8,
}

/// What lies on the other side of a face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaceNeighbor {
    /// Another cell of the mesh.
    Interior(u32),
    /// The domain boundary.
    Boundary,
}

/// A face of the mesh. `owner` is always the finer (or equal) adjacent cell,
/// so hanging faces are stored once, from the fine side.
#[derive(Debug, Clone, PartialEq)]
pub struct Face {
    /// The owning cell (the finer side for hanging faces).
    pub owner: u32,
    /// The opposite side.
    pub neighbor: FaceNeighbor,
    /// Face area.
    pub area: f64,
    /// Outward unit normal, pointing from `owner` to `neighbor`.
    pub normal: [f64; 3],
}

impl Face {
    /// The interior neighbour id, if any.
    pub fn interior_neighbor(&self) -> Option<u32> {
        match self.neighbor {
            FaceNeighbor::Interior(c) => Some(c),
            FaceNeighbor::Boundary => None,
        }
    }
}

/// An unstructured mesh with per-cell temporal levels.
#[derive(Debug, Clone)]
pub struct Mesh {
    cells: Vec<Cell>,
    faces: Vec<Face>,
    /// Temporal level τ per cell. τ = 0 is the *finest* level (smallest
    /// allowed time step, computed at every subiteration).
    tau: Vec<u8>,
    /// Number of temporal-level classes present in the scheme (τ ∈ 0..n).
    n_levels: u8,
    /// CSR cell → face-id adjacency.
    cell_face_offsets: Vec<usize>,
    cell_face_ids: Vec<u32>,
}

impl Mesh {
    /// Converts a balanced octree into a mesh. Temporal levels start at zero
    /// for every cell; call [`crate::temporal::TemporalScheme::assign`] to
    /// derive them from cell sizes.
    pub fn from_octree(tree: &Octree) -> Self {
        let leaves = tree.leaves();
        let mut cells = Vec::with_capacity(leaves.len());
        for &key in leaves {
            let h = Octree::size_of(key.0);
            cells.push(Cell {
                centroid: Octree::centre_of(key),
                volume: h * h * h,
                depth: key.0,
            });
        }
        let mut faces = Vec::new();
        for (id, &key) in leaves.iter().enumerate() {
            let id = id as u32;
            let (d, x, y, z) = key;
            let n = 1i64 << d;
            let h = Octree::size_of(d);
            for &dir in &DIRECTIONS {
                let (nx, ny, nz) = (
                    i64::from(x) + dir.0,
                    i64::from(y) + dir.1,
                    i64::from(z) + dir.2,
                );
                let normal = [dir.0 as f64, dir.1 as f64, dir.2 as f64];
                if nx < 0 || ny < 0 || nz < 0 || nx >= n || ny >= n || nz >= n {
                    faces.push(Face {
                        owner: id,
                        neighbor: FaceNeighbor::Boundary,
                        area: h * h,
                        normal,
                    });
                    continue;
                }
                // A `None` lookup means the region is covered by finer
                // leaves: they own the shared faces.
                if let Some((nk, nid)) = tree.same_or_coarser_neighbor(key, dir) {
                    // Emit once per pair: the finer side owns the face; at
                    // equal depth only the positive direction emits.
                    let emit = if nk.0 < d {
                        true
                    } else {
                        dir.0 + dir.1 + dir.2 > 0
                    };
                    if emit {
                        faces.push(Face {
                            owner: id,
                            neighbor: FaceNeighbor::Interior(nid),
                            area: h * h,
                            normal,
                        });
                    }
                }
            }
        }
        let n_cells = cells.len();
        let mut mesh = Self {
            cells,
            faces,
            tau: vec![0; n_cells],
            n_levels: 1,
            cell_face_offsets: Vec::new(),
            cell_face_ids: Vec::new(),
        };
        mesh.rebuild_adjacency();
        mesh
    }

    /// Builds a mesh directly from parts (used by tests and tools).
    ///
    /// # Panics
    ///
    /// Panics if a face references an out-of-range cell.
    pub fn from_parts(cells: Vec<Cell>, faces: Vec<Face>) -> Self {
        let n = cells.len() as u32;
        for f in &faces {
            assert!(f.owner < n, "face owner out of range");
            if let FaceNeighbor::Interior(c) = f.neighbor {
                assert!(c < n, "face neighbor out of range");
                assert_ne!(c, f.owner, "face connects a cell to itself");
            }
        }
        let n_cells = cells.len();
        let mut mesh = Self {
            cells,
            faces,
            tau: vec![0; n_cells],
            n_levels: 1,
            cell_face_offsets: Vec::new(),
            cell_face_ids: Vec::new(),
        };
        mesh.rebuild_adjacency();
        mesh
    }

    fn rebuild_adjacency(&mut self) {
        let n = self.cells.len();
        let mut counts = vec![0usize; n];
        for f in &self.faces {
            counts[f.owner as usize] += 1;
            if let FaceNeighbor::Interior(c) = f.neighbor {
                counts[c as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut ids = vec![0u32; acc];
        let mut cursor = offsets.clone();
        for (fid, f) in self.faces.iter().enumerate() {
            ids[cursor[f.owner as usize]] = fid as u32;
            cursor[f.owner as usize] += 1;
            if let FaceNeighbor::Interior(c) = f.neighbor {
                ids[cursor[c as usize]] = fid as u32;
                cursor[c as usize] += 1;
            }
        }
        self.cell_face_offsets = offsets;
        self.cell_face_ids = ids;
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of faces (interior + boundary).
    pub fn n_faces(&self) -> usize {
        self.faces.len()
    }

    /// Number of interior faces.
    pub fn n_interior_faces(&self) -> usize {
        self.faces
            .iter()
            .filter(|f| f.interior_neighbor().is_some())
            .count()
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All faces.
    pub fn faces(&self) -> &[Face] {
        &self.faces
    }

    /// Face ids incident to `cell`.
    pub fn cell_faces(&self, cell: u32) -> &[u32] {
        let c = cell as usize;
        &self.cell_face_ids[self.cell_face_offsets[c]..self.cell_face_offsets[c + 1]]
    }

    /// Temporal level of every cell.
    pub fn tau(&self) -> &[u8] {
        &self.tau
    }

    /// Temporal level of one cell.
    pub fn cell_tau(&self, cell: u32) -> u8 {
        self.tau[cell as usize]
    }

    /// Temporal level of a face: the minimum of its adjacent cells' levels
    /// (a face must be updated as often as its most frequently updated cell).
    pub fn face_tau(&self, face: u32) -> u8 {
        let f = &self.faces[face as usize];
        let t = self.tau[f.owner as usize];
        match f.neighbor {
            FaceNeighbor::Interior(c) => t.min(self.tau[c as usize]),
            FaceNeighbor::Boundary => t,
        }
    }

    /// Number of temporal-level classes (τ ranges over `0..n_tau_levels()`).
    pub fn n_tau_levels(&self) -> u8 {
        self.n_levels
    }

    /// Overwrites the temporal levels.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the cell count, if `n_levels`
    /// is zero, or any level is `>= n_levels`.
    pub fn set_tau(&mut self, tau: Vec<u8>, n_levels: u8) {
        assert_eq!(tau.len(), self.cells.len(), "tau vector length");
        assert!(n_levels >= 1, "need at least one temporal level");
        assert!(
            tau.iter().all(|&t| t < n_levels),
            "temporal level out of range"
        );
        self.tau = tau;
        self.n_levels = n_levels;
    }

    /// Exports the cell-connectivity graph: one vertex per cell, one edge per
    /// interior face (multiple faces between the same pair merge into one
    /// edge whose weight is the face multiplicity). Vertex weights are unit
    /// single-constraint; strategies re-weight via
    /// [`CsrGraph::with_vertex_weights`].
    pub fn to_graph(&self) -> CsrGraph {
        let mut b = GraphBuilder::new(self.cells.len(), 1);
        for f in &self.faces {
            if let FaceNeighbor::Interior(c) = f.neighbor {
                b.add_edge(f.owner, c, 1);
            }
        }
        b.build()
    }

    /// Total mesh volume (should approximate the unit cube for octree
    /// meshes).
    pub fn total_volume(&self) -> f64 {
        self.cells.iter().map(|c| c.volume).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::OctreeConfig;

    fn uniform(depth: u8) -> Mesh {
        let cfg = OctreeConfig {
            base_depth: depth,
            max_depth: depth,
        };
        Mesh::from_octree(&Octree::build(&cfg, |_, _, _| false))
    }

    #[test]
    fn uniform_grid_counts() {
        let m = uniform(2); // 4x4x4 grid
        assert_eq!(m.n_cells(), 64);
        // Interior faces: 3 * 4*4*3 = 144; boundary: 6 * 16 = 96.
        assert_eq!(m.n_interior_faces(), 144);
        assert_eq!(m.n_faces() - m.n_interior_faces(), 96);
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_face_adjacency_is_complete() {
        let m = uniform(2);
        // Every cell of a uniform grid touches exactly 6 faces.
        for c in 0..m.n_cells() as u32 {
            assert_eq!(m.cell_faces(c).len(), 6);
        }
        // Each interior face appears in exactly two cells' lists, boundary in one.
        let mut seen = vec![0usize; m.n_faces()];
        for c in 0..m.n_cells() as u32 {
            for &f in m.cell_faces(c) {
                seen[f as usize] += 1;
            }
        }
        for (fid, &count) in seen.iter().enumerate() {
            let expected = if m.faces()[fid].interior_neighbor().is_some() {
                2
            } else {
                1
            };
            assert_eq!(count, expected, "face {fid}");
        }
    }

    #[test]
    fn refined_mesh_volume_conserved_and_hanging_faces() {
        // Refine one octant: produces 4-to-1 hanging faces.
        let cfg = OctreeConfig {
            base_depth: 1,
            max_depth: 2,
        };
        let t = Octree::build(&cfg, |c, _, d| {
            d == 1 && c[0] < 0.5 && c[1] < 0.5 && c[2] < 0.5
        });
        let m = Mesh::from_octree(&t);
        assert_eq!(m.n_cells(), 7 + 8);
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
        // Hanging faces: the refined octant exposes 3 outer coarse contacts,
        // each split into 4 fine faces owned by the fine cells.
        let hanging = m
            .faces()
            .iter()
            .filter(|f| {
                f.interior_neighbor()
                    .map(|nb| m.cells()[f.owner as usize].depth != m.cells()[nb as usize].depth)
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(hanging, 12);
        // Hanging faces have the fine cell as owner.
        for f in m.faces() {
            if let Some(nb) = f.interior_neighbor() {
                assert!(m.cells()[f.owner as usize].depth >= m.cells()[nb as usize].depth);
            }
        }
    }

    #[test]
    fn graph_matches_adjacency() {
        let m = uniform(2);
        let g = m.to_graph();
        assert_eq!(g.nvtx(), 64);
        assert_eq!(g.nedges(), 144);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn face_tau_is_min_of_cells() {
        let mut m = uniform(1); // 8 cells
        let mut tau = vec![1u8; 8];
        tau[0] = 0;
        m.set_tau(tau, 2);
        for (fid, f) in m.faces().iter().enumerate() {
            if let Some(nb) = f.interior_neighbor() {
                if f.owner == 0 || nb == 0 {
                    assert_eq!(m.face_tau(fid as u32), 0);
                } else {
                    assert_eq!(m.face_tau(fid as u32), 1);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "temporal level out of range")]
    fn set_tau_rejects_out_of_range() {
        let mut m = uniform(1);
        m.set_tau(vec![3; 8], 2);
    }
}
