#![warn(missing_docs)]
//! Unstructured finite-volume meshes with temporal-adaptive cell levels.
//!
//! The paper's meshes (CYLINDER, CUBE, PPRIME_NOZZLE) are proprietary Airbus
//! meshes. This crate substitutes *synthetic* meshes with the same structural
//! properties: graded unstructured meshes whose cell volumes span several
//! octaves, concentrated around one or more "hotspots" (nozzle exit,
//! machinery piece, ...), with temporal levels derived from cell size through
//! a CFL-style rule. The generators are calibrated so that the per-level cell
//! fractions approximate Table I of the paper.
//!
//! Meshes are produced by graded octree refinement with 2:1 balance, which
//! yields hexahedral cells of volume `8^{-ℓ}` and hanging-node faces —
//! exactly the volume heterogeneity that motivates adaptive time stepping.

pub mod cloud;
pub mod drift;
pub mod generators;
pub mod io;
pub mod mesh;
pub mod octree;
pub mod temporal;

pub use cloud::{cloud_cell_count, paper_scale_nside, sfc_cloud, SfcCloud};
pub use drift::DriftConfig;
pub use generators::{cube_like, cylinder_like, pprime_nozzle_like, GeneratorConfig, MeshCase};
pub use io::{cells_csv, to_vtk, write_vtk};
pub use mesh::{Cell, Face, FaceNeighbor, Mesh};
pub use octree::{Octree, OctreeConfig};
pub use temporal::{
    assign_radial, computation_shares, level_histogram, operating_cost, TemporalScheme,
};
